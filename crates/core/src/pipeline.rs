//! The end-to-end Inspector Gadget pipeline (Figures 2 and 3).
//!
//! Inputs: a pattern bank (crowd patterns, optionally extended by the
//! augmenter) and a labeled development set. Training matches every
//! pattern against every dev image (features), tunes and fits the MLP
//! labeler. Labeling then turns any batch of unlabeled images into weak
//! labels — "after training the Labeler, Inspector Gadget only utilizes
//! [patterns, feature generator, labeler] for generating weak labels".

use std::sync::Arc;

use crate::features::{FeatureGenerator, MatchBackend};
use crate::labeler::Labeler;
use crate::stages::{BuildFeatureGen, ComputeFeatureShard, ComputeFeatures, DevSet, TrainLabeler};
use crate::tuning::{TuningConfig, TuningReport};
use crate::Pattern;
use crate::Result;
use ig_faults::{FaultPlan, HealthReport};
use ig_imaging::prepared::PreparedImage;
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use ig_runtime::{infallible, Fingerprint, RunContext, ShardPlan};
use rand::Rng;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Matching backend for the FGFs.
    pub backend: MatchBackend,
    /// Worker threads for feature generation (0 = hardware default).
    pub threads: usize,
    /// Run architecture tuning (Section 6.5). When `false`,
    /// `fixed_hidden` is used directly — the "Min"/"Max" arms of Figure 11
    /// and speed-sensitive callers use this.
    pub tune: bool,
    /// Architecture when tuning is disabled.
    pub fixed_hidden: Vec<usize>,
    /// Tuning parameters.
    pub tuning: TuningConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        Self {
            backend: MatchBackend::Pyramid,
            threads: 0,
            tune: true,
            fixed_hidden: vec![8],
            tuning: TuningConfig::default(),
        }
    }
}

/// Weak labels for a batch of images.
#[derive(Debug, Clone)]
pub struct WeakLabelOutput {
    /// Hard weak label per image.
    pub labels: Vec<usize>,
    /// Per-class probabilities (rows sum to 1).
    pub probabilities: Matrix,
    /// Max FGF similarity per image — the error-analysis signal.
    pub max_similarities: Vec<f32>,
}

/// A trained Inspector Gadget instance.
#[derive(Debug)]
pub struct InspectorGadget {
    feature_gen: Arc<FeatureGenerator>,
    /// Fingerprint of the pattern bank + matching config the generator
    /// was built from; keys every downstream feature-computation stage.
    bank_fp: Fingerprint,
    labeler: Labeler,
    /// Development-set feature matrix computed during training, kept so
    /// downstream consumers (experiments, error analysis) reuse it
    /// instead of re-running the matching engine.
    dev_features: Arc<Matrix>,
    /// Tuning report when tuning ran.
    pub tuning_report: Option<TuningReport>,
    /// Every fault detected and recovery taken during training.
    pub health: HealthReport,
}

impl InspectorGadget {
    /// Train from patterns and a labeled development set.
    ///
    /// Thin shim over [`InspectorGadget::train_in`] with an ephemeral
    /// [`RunContext`] (no fault plan).
    pub fn train(
        patterns: Vec<Pattern>,
        dev_images: &[&GrayImage],
        dev_labels: &[usize],
        num_classes: usize,
        config: &PipelineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let ctx = RunContext::new(0);
        Self::train_in(
            &ctx,
            patterns,
            DevSet::Raw(dev_images),
            dev_labels,
            num_classes,
            config,
            rng,
        )
    }

    /// [`InspectorGadget::train`] under an optional chaos plan — a thin
    /// shim over [`InspectorGadget::train_in`] with the plan installed in
    /// an ephemeral [`RunContext`].
    ///
    /// The full training recovery ladder applies:
    ///
    /// 1. degenerate patterns are quarantined, non-finite / errored
    ///    features sanitized, panicked feature workers recomputed serially;
    /// 2. tuning skips failing candidates; if tuning fails outright, the
    ///    fixed `config.fixed_hidden` architecture is trained instead;
    /// 3. if that fit also fails (diverged after restarts), the labeler
    ///    degrades to the class-prior predictor.
    ///
    /// The resulting [`HealthReport`] is attached to the returned model.
    /// `plan: None` (or an empty plan) changes nothing about training.
    #[allow(clippy::too_many_arguments)]
    pub fn train_with_plan(
        patterns: Vec<Pattern>,
        dev_images: &[&GrayImage],
        dev_labels: &[usize],
        num_classes: usize,
        config: &PipelineConfig,
        rng: &mut impl Rng,
        plan: Option<&FaultPlan>,
    ) -> Result<Self> {
        let ctx = RunContext::new(0).with_plan(plan.cloned());
        Self::train_in(
            &ctx,
            patterns,
            DevSet::Raw(dev_images),
            dev_labels,
            num_classes,
            config,
            rng,
        )
    }

    /// [`InspectorGadget::train_with_plan`] over images prepared once with
    /// [`FeatureGenerator::prepare_images`] — a thin shim over
    /// [`InspectorGadget::train_in`]. The per-image pyramid and integral
    /// caches are supplied by the caller, so training a second generator
    /// (or ablation arm) on the same development set skips the
    /// image-preparation work entirely.
    #[allow(clippy::too_many_arguments)]
    pub fn train_prepared(
        patterns: Vec<Pattern>,
        dev_images: &[PreparedImage],
        dev_labels: &[usize],
        num_classes: usize,
        config: &PipelineConfig,
        rng: &mut impl Rng,
        plan: Option<&FaultPlan>,
    ) -> Result<Self> {
        let ctx = RunContext::new(0).with_plan(plan.cloned());
        Self::train_in(
            &ctx,
            patterns,
            DevSet::Prepared(dev_images),
            dev_labels,
            num_classes,
            config,
            rng,
        )
    }

    /// The one training path: run the stage graph under `ctx`.
    ///
    /// Stages executed, in order: [`BuildFeatureGen`] (memoized by
    /// pattern-bank fingerprint), [`ComputeFeatures`] over the dev set
    /// (memoized by bank + image content + fault plan), and
    /// [`TrainLabeler`] (never memoized — it consumes `rng`). The fault
    /// plan comes from `ctx`; faults recorded during this call land both
    /// in the returned model's [`InspectorGadget::health`] and in the
    /// context-wide [`RunContext::health`] aggregate.
    ///
    /// Under a context whose artifact store already holds this pattern
    /// bank's generator or this dev set's features (e.g. a second
    /// experiment arm), those stages are served bit-identically from
    /// cache instead of recomputing.
    ///
    /// Under a budgeted scale plan (`ctx.scale().memory_budget_bytes > 0`,
    /// i.e. the `ooc` tier), a prepared dev set streams through
    /// [`ComputeFeatureShard`] in budget-sized slices instead of one
    /// monolithic [`ComputeFeatures`] run; the resulting matrix is
    /// bit-identical either way, but each shard memoizes, persists, and
    /// crash-resumes independently.
    pub fn train_in(
        ctx: &RunContext,
        patterns: Vec<Pattern>,
        dev: DevSet<'_>,
        dev_labels: &[usize],
        num_classes: usize,
        config: &PipelineConfig,
        rng: &mut impl Rng,
    ) -> Result<Self> {
        let health = HealthReport::new();
        let mut build = BuildFeatureGen::new(patterns, config, &health, ctx);
        let bank_fp = build.bank_fp();
        let feature_gen = ctx.run(&mut build)?;
        let features = match dev {
            DevSet::Prepared(images) if ctx.scale().memory_budget_bytes > 0 => {
                Self::features_sharded(ctx, bank_fp, &feature_gen, images, ctx.plan(), &health)
            }
            _ => infallible(ctx.run(&mut ComputeFeatures::new(
                bank_fp,
                &feature_gen,
                dev,
                ctx.plan(),
                &health,
            ))),
        };
        let (labeler, tuning_report) = ctx.run_owned(&mut TrainLabeler {
            features: &features,
            dev_labels,
            num_classes,
            config,
            rng,
            health: &health,
        })?;
        ctx.health().merge(&health);
        Ok(Self {
            feature_gen,
            bank_fp,
            labeler,
            dev_features: features,
            tuning_report,
            health,
        })
    }

    /// The out-of-core dev matrix: stream `images` through
    /// [`ComputeFeatureShard`] in budget-sized slices and concatenate the
    /// row blocks in shard order. Row coordinates stay global inside each
    /// shard, so the concatenation is bit-identical to the monolithic
    /// [`ComputeFeatures`] matrix under any fault plan — while each shard
    /// memoizes (and persists) independently, so a resumed or concurrent
    /// sweep recomputes only the shards its store is missing.
    fn features_sharded(
        ctx: &RunContext,
        bank_fp: Fingerprint,
        generator: &FeatureGenerator,
        images: &[PreparedImage],
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Arc<Matrix> {
        let total_bytes: u64 = images.iter().map(|i| i.approx_bytes() as u64).sum();
        let shard_plan =
            ShardPlan::for_budget(images.len(), total_bytes, ctx.scale().memory_budget_bytes);
        if shard_plan.count <= 1 {
            // Everything fits: keep the monolithic artifact so warm
            // stores keyed by `core.features` still hit.
            return infallible(ctx.run(&mut ComputeFeatures::new(
                bank_fp,
                generator,
                DevSet::Prepared(images),
                plan,
                health,
            )));
        }
        let cols = generator.num_features();
        let mut data = Vec::with_capacity(images.len() * cols);
        for shard in shard_plan.shards() {
            let rows = infallible(ctx.run(&mut ComputeFeatureShard::new(
                bank_fp,
                generator,
                &images[shard.start..shard.end],
                shard,
                plan,
                health,
            )));
            data.extend_from_slice(rows.as_slice());
        }
        Arc::new(Matrix::from_vec(images.len(), cols, data))
    }

    /// Number of FGFs.
    pub fn num_features(&self) -> usize {
        self.feature_gen.num_features()
    }

    /// Borrow the feature generator (for feature reuse in experiments).
    pub fn feature_generator(&self) -> &FeatureGenerator {
        self.feature_gen.as_ref()
    }

    /// Fingerprint of the pattern bank + matching config this model was
    /// trained with — the key under which feature computations for this
    /// model memoize.
    pub fn bank_fingerprint(&self) -> Fingerprint {
        self.bank_fp
    }

    /// The development-set feature matrix computed during training.
    /// Experiments that previously re-matched the dev set after training
    /// should read this instead — it is exactly what the labeler was
    /// tuned and fit on.
    pub fn dev_features(&self) -> &Matrix {
        self.dev_features.as_ref()
    }

    /// Feature matrix of any batch under this model's generator, memoized
    /// in `ctx`'s artifact store: a second arm (or a second model trained
    /// from the same pattern bank) labeling the same batch reuses the
    /// cached matrix instead of re-running the matching engine.
    pub fn features_in(&self, ctx: &RunContext, images: DevSet<'_>) -> Arc<Matrix> {
        let health = HealthReport::new();
        infallible(ctx.run(&mut ComputeFeatures::new(
            self.bank_fp,
            self.feature_gen.as_ref(),
            images,
            None,
            &health,
        )))
    }

    /// [`InspectorGadget::label_prepared`] with the feature matrix
    /// memoized in `ctx` (see [`InspectorGadget::features_in`]).
    pub fn label_prepared_in(&self, ctx: &RunContext, images: &[PreparedImage]) -> WeakLabelOutput {
        let features = self.features_in(ctx, DevSet::Prepared(images));
        self.label_from_features(&features)
    }

    /// Generate weak labels for a batch of images.
    pub fn label(&self, images: &[&GrayImage]) -> WeakLabelOutput {
        let features = self.feature_gen.feature_matrix(images);
        self.label_from_features(&features)
    }

    /// [`InspectorGadget::label`] over images prepared once with
    /// [`FeatureGenerator::prepare_images`] — lets callers label the same
    /// batch with several trained models (ablation arms) while building
    /// each image's pyramid and integral tables exactly once.
    pub fn label_prepared(&self, images: &[PreparedImage]) -> WeakLabelOutput {
        let features = self.feature_gen.feature_matrix_prepared(images);
        self.label_from_features(&features)
    }

    /// Generate weak labels from a precomputed feature matrix (images in
    /// the same pattern order). Lets experiments compute features once and
    /// reuse them across ablation arms.
    pub fn label_from_features(&self, features: &Matrix) -> WeakLabelOutput {
        let labels = self.labeler.predict(features);
        let probabilities = self.labeler.predict_proba(features);
        let max_similarities = (0..features.rows())
            .map(|r| FeatureGenerator::max_similarity(features, r))
            .collect();
        WeakLabelOutput {
            labels,
            probabilities,
            max_similarities,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSource;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A miniature fully-synthetic task: images with or without a dark
    /// square; the pattern bank contains a dark-square crop.
    fn make_task(n: usize, seed: u64) -> (Vec<Pattern>, Vec<GrayImage>, Vec<usize>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let defect = i % 2 == 1;
            let mut img = GrayImage::from_fn(48, 32, |x, y| {
                0.65 + 0.05 * ((x as f32 * 0.4).sin() * (y as f32 * 0.3).cos())
            });
            if defect {
                let x = rng.gen_range(2..38);
                let y = rng.gen_range(2..22);
                img.fill_rect(x, y, 7, 7, 0.15);
            }
            images.push(img);
            labels.push(usize::from(defect));
        }
        let mut pat = GrayImage::filled(7, 7, 0.15);
        pat.fill_rect(0, 0, 7, 1, 0.6); // context edge
        let patterns = vec![
            Pattern::crowd(pat),
            Pattern::augmented(GrayImage::filled(6, 6, 0.15), PatternSource::Policy),
        ];
        (patterns, images, labels)
    }

    #[test]
    fn pipeline_learns_synthetic_task() {
        let mut rng = StdRng::seed_from_u64(0);
        let (patterns, images, labels) = make_task(40, 1);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            ..Default::default()
        };
        let ig = InspectorGadget::train(patterns, &refs[..30], &labels[..30], 2, &config, &mut rng)
            .unwrap();
        let out = ig.label(&refs[30..]);
        let correct = out
            .labels
            .iter()
            .zip(&labels[30..])
            .filter(|(a, b)| a == b)
            .count();
        assert!(correct >= 8, "{correct}/10 correct");
        assert_eq!(out.probabilities.rows(), 10);
        assert_eq!(out.max_similarities.len(), 10);
    }

    #[test]
    fn pipeline_with_tuning_reports() {
        let mut rng = StdRng::seed_from_u64(2);
        let (patterns, images, labels) = make_task(50, 3);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tuning: TuningConfig {
                max_hidden_layers: 1,
                lbfgs: ig_nn::LbfgsConfig {
                    max_iters: 40,
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let ig = InspectorGadget::train(patterns, &refs, &labels, 2, &config, &mut rng).unwrap();
        let report = ig.tuning_report.as_ref().expect("tuning ran");
        assert!(!report.candidates.is_empty());
        assert!(!report.best_hidden.is_empty());
    }

    #[test]
    fn label_from_features_matches_label() {
        let mut rng = StdRng::seed_from_u64(4);
        let (patterns, images, labels) = make_task(30, 5);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            ..Default::default()
        };
        let ig = InspectorGadget::train(patterns, &refs, &labels, 2, &config, &mut rng).unwrap();
        let direct = ig.label(&refs);
        let features = ig.feature_generator().feature_matrix(&refs);
        let via_features = ig.label_from_features(&features);
        assert_eq!(direct.labels, via_features.labels);
    }

    #[test]
    fn train_prepared_matches_unprepared_training() {
        let (patterns, images, labels) = make_task(40, 21);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            ..Default::default()
        };
        let mut rng_a = StdRng::seed_from_u64(22);
        let plain = InspectorGadget::train(
            patterns.clone(),
            &refs[..30],
            &labels[..30],
            2,
            &config,
            &mut rng_a,
        )
        .unwrap();
        let prepped = plain.feature_generator().prepare_images(&refs);
        let mut rng_b = StdRng::seed_from_u64(22);
        let prepared = InspectorGadget::train_prepared(
            patterns,
            &prepped[..30],
            &labels[..30],
            2,
            &config,
            &mut rng_b,
            None,
        )
        .unwrap();
        assert_eq!(
            plain.dev_features().as_slice(),
            prepared.dev_features().as_slice(),
            "prepared training must see bit-identical dev features"
        );
        let out_a = plain.label(&refs[30..]);
        let out_b = prepared.label_prepared(&prepped[30..]);
        assert_eq!(out_a.labels, out_b.labels);
        assert_eq!(
            out_a.probabilities.as_slice(),
            out_b.probabilities.as_slice()
        );
    }

    #[test]
    fn clean_run_reports_clean_health() {
        let mut rng = StdRng::seed_from_u64(8);
        let (mut patterns, images, labels) = make_task(40, 9);
        // The second fixture pattern is constant by construction and
        // would (correctly) trigger a quarantine event; drop it to test
        // the genuinely clean path.
        patterns.truncate(1);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            ..Default::default()
        };
        let ig = InspectorGadget::train(patterns, &refs, &labels, 2, &config, &mut rng).unwrap();
        assert!(ig.health.is_clean(), "{}", ig.health.render());
    }

    #[test]
    fn empty_plan_matches_train_without_plan() {
        let (mut patterns, images, labels) = make_task(40, 11);
        patterns.truncate(1); // drop the constant fixture pattern
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            ..Default::default()
        };
        let mut rng_a = StdRng::seed_from_u64(12);
        let plain = InspectorGadget::train(
            patterns.clone(),
            &refs[..30],
            &labels[..30],
            2,
            &config,
            &mut rng_a,
        )
        .unwrap();
        let mut rng_b = StdRng::seed_from_u64(12);
        let plan = FaultPlan::none(99);
        let planned = InspectorGadget::train_with_plan(
            patterns,
            &refs[..30],
            &labels[..30],
            2,
            &config,
            &mut rng_b,
            Some(&plan),
        )
        .unwrap();
        assert!(planned.health.is_clean());
        let out_a = plain.label(&refs[30..]);
        let out_b = planned.label(&refs[30..]);
        assert_eq!(out_a.labels, out_b.labels);
        assert_eq!(
            out_a.probabilities.as_slice(),
            out_b.probabilities.as_slice()
        );
    }

    #[test]
    fn chaos_plan_survives_and_reports() {
        let mut rng = StdRng::seed_from_u64(14);
        let (patterns, images, labels) = make_task(40, 15);
        let refs: Vec<&GrayImage> = images.iter().collect();
        let config = PipelineConfig {
            tune: false,
            threads: 4,
            ..Default::default()
        };
        let plan = ig_faults::FaultPlan {
            seed: 21,
            nan_feature_rate: 0.05,
            inf_feature_rate: 0.02,
            degenerate_pattern_rate: 0.6,
            worker_panic_rate: 0.5,
            ..ig_faults::FaultPlan::default()
        };
        let ig = InspectorGadget::train_with_plan(
            patterns,
            &refs,
            &labels,
            2,
            &config,
            &mut rng,
            Some(&plan),
        )
        .unwrap();
        assert!(!ig.health.is_clean());
        let out = ig.label(&refs);
        assert!(out.probabilities.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_pattern_bank_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let (_, images, labels) = make_task(10, 7);
        let refs: Vec<&GrayImage> = images.iter().collect();
        assert!(InspectorGadget::train(
            vec![],
            &refs,
            &labels,
            2,
            &PipelineConfig::default(),
            &mut rng
        )
        .is_err());
    }
}
