//! [`RunContext`]: the single carrier of run-wide discipline.

#[cfg(debug_assertions)]
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
#[cfg(debug_assertions)]
use std::sync::Mutex;
use std::time::Duration;

use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::disk::{DiskStore, Flight};
use crate::fingerprint::{Fingerprint, FingerprintHasher, Fingerprintable};
use crate::scale::ScalePlan;
use crate::stage::Stage;
use crate::store::ArtifactStore;

/// Injected monotonic time source, in milliseconds from an arbitrary
/// origin.
///
/// Library code must not read wall clocks (a clean run is bit-for-bit
/// reproducible from its seed, and ambient time breaks that silently), so
/// the runtime never calls `Instant::now` itself. Drivers that want
/// deadline supervision install a clock — typically built from a
/// monotonic timer in the exempt `experiments`/`bench` crates, or from a
/// deterministic counter in tests. With no clock installed, deadlines are
/// simply not checked; retries and backoff work regardless.
#[derive(Clone)]
pub struct Clock(Arc<dyn Fn() -> u64 + Send + Sync>);

impl Clock {
    /// Wrap a time source returning milliseconds from a fixed origin.
    pub fn new(source: impl Fn() -> u64 + Send + Sync + 'static) -> Clock {
        Clock(Arc::new(source))
    }

    /// Current reading, in milliseconds.
    pub fn now_ms(&self) -> u64 {
        (self.0)()
    }
}

impl fmt::Debug for Clock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Clock(injected)")
    }
}

/// Debug-build salt ledger: the runtime mirror of ig-lint's static
/// `salt-determinism` rule. Records which stage first drew each
/// `rng(salt)` and trips (debug/test builds only) when a *different*
/// stage draws the same salt — `seed ^ salt` makes their streams
/// bit-identical, and nothing downstream can see it (the fingerprints
/// still differ, memoization stays correct, the outputs are just
/// silently correlated). Draws outside any stage (driver code, tests
/// seeding their own rngs) are not recorded.
#[cfg(debug_assertions)]
#[derive(Debug, Default)]
struct SaltLedger {
    /// Stack of stage ids currently executing under this context tree.
    running: Vec<&'static str>,
    /// First stage to draw each salt.
    seen: BTreeMap<u64, &'static str>,
}

/// Everything a pipeline run shares: the seed, the active fault plan, the
/// thread budget, the scale plan, the health report and the artifact
/// store.
///
/// Cloning is cheap and *scoped*: the clone shares the store and health
/// report but may carry a different fault plan (see
/// [`RunContext::with_plan`]), which is how the chaos experiment runs a
/// clean arm and a faulted arm over the same memoized dataset artifacts
/// without ever serving a faulted artifact to the clean arm — the plan is
/// part of every plan-sensitive cache key.
#[derive(Debug, Clone)]
pub struct RunContext {
    seed: u64,
    threads: usize,
    memoize: bool,
    scale: ScalePlan,
    plan: Option<FaultPlan>,
    store: Arc<ArtifactStore>,
    health: Arc<HealthReport>,
    stage_runs: Arc<AtomicU64>,
    clock: Option<Clock>,
    #[cfg(debug_assertions)]
    salts: Arc<Mutex<SaltLedger>>,
}

impl RunContext {
    /// Context with the given seed, no fault plan, hardware-default
    /// threads, quick scale, memoization on.
    pub fn new(seed: u64) -> RunContext {
        RunContext {
            seed,
            threads: 0,
            memoize: true,
            scale: ScalePlan::quick(),
            plan: None,
            store: Arc::new(ArtifactStore::new()),
            health: Arc::new(HealthReport::new()),
            stage_runs: Arc::new(AtomicU64::new(0)),
            clock: None,
            #[cfg(debug_assertions)]
            salts: Arc::new(Mutex::new(SaltLedger::default())),
        }
    }

    /// Replace the fault plan (shares the store: plan-sensitive cache
    /// keys keep the arms apart).
    pub fn with_plan(mut self, plan: Option<FaultPlan>) -> RunContext {
        self.plan = plan;
        self
    }

    /// Set the worker-thread budget (0 = hardware default).
    pub fn with_threads(mut self, threads: usize) -> RunContext {
        self.threads = threads;
        self
    }

    /// Set the scale plan.
    pub fn with_scale(mut self, scale: ScalePlan) -> RunContext {
        self.scale = scale;
        self
    }

    /// Turn memoization on or off (off: every stage recomputes).
    pub fn with_memoization(mut self, on: bool) -> RunContext {
        self.memoize = on;
        self
    }

    /// Attach a durable on-disk tier beneath the artifact store (shared
    /// by every clone of this context — the store is shared).
    pub fn with_disk(self, disk: Arc<DiskStore>) -> RunContext {
        self.store.attach_disk(disk);
        self
    }

    /// Bound the in-memory artifact store (0 = unbounded); see
    /// [`ArtifactStore::set_capacity`].
    pub fn with_store_capacity(self, capacity: usize) -> RunContext {
        self.store.set_capacity(capacity);
        self
    }

    /// Install a monotonic clock enabling deadline supervision.
    pub fn with_clock(mut self, clock: Clock) -> RunContext {
        self.clock = Some(clock);
        self
    }

    /// The run seed — the root of all seed discipline.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A deterministic RNG for the given salt: seeded with
    /// `seed() ^ salt`, so `ctx.rng(0)` reproduces the legacy
    /// `StdRng::seed_from_u64(seed)` streams exactly.
    ///
    /// Debug builds additionally record which stage drew each salt and
    /// panic when two *different* stages share one (see [`SaltLedger`]) —
    /// the runtime mirror of ig-lint's static `salt-determinism` rule.
    pub fn rng(&self, salt: u64) -> StdRng {
        #[cfg(debug_assertions)]
        self.note_salt(salt);
        StdRng::seed_from_u64(self.seed ^ salt)
    }

    /// Record a salt draw against the currently executing stage; trip on
    /// a cross-stage collision. Debug-only: compiled out of release
    /// builds entirely.
    #[cfg(debug_assertions)]
    fn note_salt(&self, salt: u64) {
        let Ok(mut ledger) = self.salts.lock() else {
            return;
        };
        let Some(&stage) = ledger.running.last() else {
            return;
        };
        let first = *ledger.seen.entry(salt).or_insert(stage);
        debug_assert!(
            first == stage,
            "cross-stage salt collision: `{stage}` drew ctx.rng({salt:#x}), already drawn by \
             `{first}` — `seed ^ salt` makes their random streams bit-identical; give each \
             stage its own salt const (runtime mirror of ig-lint's salt-determinism rule)"
        );
    }

    /// Push/pop the executing stage id around [`Stage::run`] so salt
    /// draws attribute to the innermost stage.
    #[cfg(debug_assertions)]
    fn enter_stage(&self, id: &'static str) {
        if let Ok(mut ledger) = self.salts.lock() {
            ledger.running.push(id);
        }
    }

    #[cfg(debug_assertions)]
    fn exit_stage(&self) {
        if let Ok(mut ledger) = self.salts.lock() {
            ledger.running.pop();
        }
    }

    /// The active fault plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// Worker-thread budget (0 = hardware default).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The scale plan.
    pub fn scale(&self) -> &ScalePlan {
        &self.scale
    }

    /// The shared health report (faults recorded by any stage under this
    /// context or its clones).
    pub fn health(&self) -> &HealthReport {
        &self.health
    }

    /// The shared artifact store.
    pub fn store(&self) -> &ArtifactStore {
        &self.store
    }

    /// Stages actually executed (cache misses + non-cacheable runs).
    pub fn stage_runs(&self) -> u64 {
        self.stage_runs.load(Ordering::Relaxed)
    }

    /// The installed clock, if any.
    pub fn clock(&self) -> Option<&Clock> {
        self.clock.as_ref()
    }

    /// The cache key [`RunContext::run`] would use for `stage`. The same
    /// key addresses the artifact in the durable tier, so harnesses can
    /// locate (or deliberately corrupt) a stage's on-disk artifact in
    /// crash drills without duplicating the key derivation.
    pub fn cache_key_for(&self, stage: &impl Stage) -> Fingerprint {
        self.cache_key(stage)
    }

    /// Cache key for a stage under this context: the stage's own
    /// fingerprint, the run seed, and (for plan-sensitive stages) the
    /// fault plan.
    fn cache_key(&self, stage: &impl Stage) -> Fingerprint {
        let mut h = FingerprintHasher::new();
        h.write_str(stage.id());
        stage.fingerprint().fingerprint_into(&mut h);
        h.write_u64(self.seed);
        if stage.plan_sensitive() {
            self.plan.fingerprint_into(&mut h);
        }
        h.finish()
    }

    /// Execute a stage, serving it from the artifact store when possible.
    ///
    /// Lookup order on a cacheable stage: the in-memory tier, then (when
    /// a [`DiskStore`] is attached) the durable tier — a disk hit is
    /// decoded via [`Stage::decode`], promoted into memory, and returned.
    /// On a hit the returned `Arc` is bit-identical to the original
    /// computation by construction: the memory tier holds the original
    /// artifact, and the durable tier's encode/decode contract plus
    /// checksum verification guarantee the same for disk. On a full miss
    /// (or for non-cacheable stages) the stage runs under its
    /// [`Stage::supervision`] policy and, when cacheable, its output is
    /// stored — and written behind to the durable tier when the stage
    /// opts in via [`Stage::encode`].
    ///
    /// Stages that also declare [`Stage::durable`] route their disk miss
    /// through [`DiskStore::begin_flight`] instead: the first process to
    /// claim the key computes and publishes, concurrent processes wait
    /// and read the published artifact back — each artifact is computed
    /// once per store root, not once per process.
    pub fn run<S: Stage>(&self, stage: &mut S) -> Result<Arc<S::Output>, S::Error> {
        let cacheable = self.memoize && stage.cacheable();
        if !cacheable {
            self.stage_runs.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(self.execute(stage)?));
        }
        let key = self.cache_key(stage);
        if let Some(artifact) = self.store.get(stage.id(), key) {
            // A downcast failure means two stages share an id; fall
            // through and recompute (the insert below then repairs
            // the entry).
            if let Ok(typed) = artifact.downcast::<S::Output>() {
                return Ok(typed);
            }
        }
        if stage.durable() {
            // Expensive-and-persistable: claim single-flight production so
            // concurrent processes on one store root compute each artifact
            // exactly once. Falls through only when the flight could not
            // settle the output (no disk, or a quarantined decode).
            if let Some(output) = self.run_flight(stage, key)? {
                return Ok(output);
            }
        } else if let Some(output) = self.load_durable(stage, key) {
            let output = Arc::new(output);
            self.store.insert(stage.id(), key, output.clone());
            return Ok(output);
        }
        self.stage_runs.fetch_add(1, Ordering::Relaxed);
        let output = Arc::new(self.execute(stage)?);
        self.store.insert(stage.id(), key, output.clone());
        self.save_durable(stage, key, &output);
        Ok(output)
    }

    /// Single-flight read-through for stages that declare
    /// [`Stage::durable`]: claim production of the artifact, or wait for
    /// the process already producing it (see [`DiskStore::begin_flight`]).
    /// `Ok(Some(..))` is the settled output — decoded from another
    /// process's published artifact, or computed here under the claim.
    /// `Ok(None)` sends the caller to the ordinary recompute path: no disk
    /// is attached, or a published artifact failed [`Stage::decode`] and
    /// was quarantined.
    fn run_flight<S: Stage>(
        &self,
        stage: &mut S,
        key: Fingerprint,
    ) -> Result<Option<Arc<S::Output>>, S::Error> {
        let Some(disk) = self.store.disk() else {
            return Ok(None);
        };
        match disk.begin_flight(stage.id(), key, self.plan.as_ref(), &self.health) {
            Flight::Ready(bytes) => match stage.decode(&bytes) {
                Some(output) => {
                    let output = Arc::new(output);
                    self.store.insert(stage.id(), key, output.clone());
                    Ok(Some(output))
                }
                None => {
                    disk.quarantine_artifact(
                        stage.id(),
                        key,
                        "verified payload failed to decode (stale codec?)",
                        &self.health,
                    );
                    Ok(None)
                }
            },
            Flight::Producer(claim) => {
                self.stage_runs.fetch_add(1, Ordering::Relaxed);
                // A failed execute drops `claim` unpublished, releasing
                // the lock so a waiting process inherits production.
                let output = Arc::new(self.execute(stage)?);
                self.store.insert(stage.id(), key, output.clone());
                match stage.encode(&output) {
                    Some(bytes) => {
                        claim.publish(&bytes, self.plan.as_ref(), &self.health);
                    }
                    // `durable()` promised an encode; tolerate a refusal
                    // by releasing the claim unpublished.
                    None => drop(claim),
                }
                Ok(Some(output))
            }
        }
    }

    /// Read-through from the durable tier: load, verify (inside
    /// [`DiskStore::load`]) and decode. A payload that passes checksum
    /// verification but fails [`Stage::decode`] was written by an
    /// incompatible codec; it is quarantined like any other corruption so
    /// the recompute below can overwrite it cleanly.
    fn load_durable<S: Stage>(&self, stage: &S, key: Fingerprint) -> Option<S::Output> {
        let disk = self.store.disk()?;
        let bytes = disk.load(stage.id(), key, &self.health)?;
        match stage.decode(&bytes) {
            Some(output) => Some(output),
            None => {
                disk.quarantine_artifact(
                    stage.id(),
                    key,
                    "verified payload failed to decode (stale codec?)",
                    &self.health,
                );
                None
            }
        }
    }

    /// Write-behind to the durable tier for stages that opt in. Failures
    /// are recorded in the health report by the store; the in-memory
    /// artifact keeps serving either way.
    fn save_durable<S: Stage>(&self, stage: &S, key: Fingerprint, output: &S::Output) {
        let Some(disk) = self.store.disk() else {
            return;
        };
        let Some(bytes) = stage.encode(output) else {
            return;
        };
        disk.save(stage.id(), key, &bytes, self.plan.as_ref(), &self.health);
    }

    /// Run the stage under its supervision policy: a bounded
    /// retry-with-backoff ladder, then a post-hoc deadline check against
    /// the installed clock. Every retry and every overrun is recorded in
    /// the shared health report.
    fn execute<S: Stage>(&self, stage: &mut S) -> Result<S::Output, S::Error> {
        let supervision = stage.supervision();
        let started = self.clock.as_ref().map(Clock::now_ms);
        let mut attempt = 0u32;
        let result = loop {
            #[cfg(debug_assertions)]
            self.enter_stage(stage.id());
            let outcome = stage.run(self);
            #[cfg(debug_assertions)]
            self.exit_stage();
            match outcome {
                Ok(output) => break Ok(output),
                Err(_) if attempt < supervision.retries => {
                    attempt += 1;
                    let backoff = supervision.backoff_ms(attempt);
                    self.health.record(
                        ig_faults::Stage::Pipeline,
                        FaultKind::StageFailure,
                        RecoveryAction::RetriedWithBackoff,
                        format!(
                            "{}: attempt {attempt}/{} failed, retrying after {backoff} ms",
                            stage.id(),
                            supervision.retries,
                        ),
                    );
                    if backoff > 0 {
                        std::thread::sleep(Duration::from_millis(backoff));
                    }
                }
                Err(e) => {
                    if supervision.retries > 0 {
                        self.health.record(
                            ig_faults::Stage::Pipeline,
                            FaultKind::StageFailure,
                            RecoveryAction::NoneRequired,
                            format!(
                                "{}: failed after {attempt} retr{}",
                                stage.id(),
                                if attempt == 1 { "y" } else { "ies" },
                            ),
                        );
                    }
                    break Err(e);
                }
            }
        };
        if supervision.deadline_ms > 0 {
            if let (Some(clock), Some(start)) = (self.clock.as_ref(), started) {
                let elapsed = clock.now_ms().saturating_sub(start);
                if elapsed > supervision.deadline_ms {
                    self.health.record(
                        ig_faults::Stage::Pipeline,
                        FaultKind::DeadlineExceeded,
                        RecoveryAction::NoneRequired,
                        format!(
                            "{}: ran {elapsed} ms against a {} ms deadline",
                            stage.id(),
                            supervision.deadline_ms,
                        ),
                    );
                }
            }
        }
        result
    }

    /// Like [`RunContext::run`] but hands back an owned output: moves out
    /// of the `Arc` when this call produced the only reference (always
    /// true for non-cacheable stages), clones otherwise.
    pub fn run_owned<S>(&self, stage: &mut S) -> Result<S::Output, S::Error>
    where
        S: Stage,
        S::Output: Clone,
    {
        let arc = self.run(stage)?;
        match Arc::try_unwrap(arc) {
            Ok(owned) => Ok(owned),
            Err(shared) => Ok((*shared).clone()),
        }
    }
}

impl Fingerprintable for Fingerprint {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_u64(self.lo);
        h.write_u64(self.hi);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use core::convert::Infallible;
    use std::sync::atomic::AtomicUsize;

    /// Test stage: doubles every element; counts real executions.
    struct Doubler<'a> {
        input: Vec<u64>,
        calls: &'a AtomicUsize,
        cacheable: bool,
    }

    impl Stage for Doubler<'_> {
        type Output = Vec<u64>;
        type Error = Infallible;

        fn id(&self) -> &'static str {
            "test.doubler"
        }

        fn fingerprint(&self) -> Fingerprint {
            self.input.fingerprint()
        }

        fn cacheable(&self) -> bool {
            self.cacheable
        }

        fn run(&mut self, _ctx: &RunContext) -> Result<Vec<u64>, Infallible> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(self.input.iter().map(|v| v * 2).collect())
        }
    }

    #[test]
    fn second_run_is_served_from_cache() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1, 2, 3],
            calls: &calls,
            cacheable: true,
        };
        let a = crate::infallible(ctx.run(&mut stage));
        let b = crate::infallible(ctx.run(&mut stage));
        assert_eq!(*a, vec![2, 4, 6]);
        assert!(Arc::ptr_eq(&a, &b), "hit returns the cached artifact");
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert_eq!(ctx.stage_runs(), 1);
    }

    #[test]
    fn changed_input_recomputes() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut a = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: true,
        };
        let mut b = Doubler {
            input: vec![2],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(ctx.run(&mut a));
        crate::infallible(ctx.run(&mut b));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn different_seed_recomputes() {
        let store_sharing = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(store_sharing.run(&mut stage));
        // Same store, different seed: the clone must not hit.
        let mut reseeded = store_sharing.clone();
        reseeded.seed = 2;
        crate::infallible(reseeded.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn plan_scopes_the_cache() {
        let clean = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![3],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(clean.run(&mut stage));
        let chaotic = clean.clone().with_plan(Some(FaultPlan::chaos(9)));
        crate::infallible(chaotic.run(&mut stage));
        assert_eq!(
            calls.load(Ordering::Relaxed),
            2,
            "plan-sensitive stage must not cross arms"
        );
    }

    #[test]
    fn non_cacheable_always_runs() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: false,
        };
        crate::infallible(ctx.run(&mut stage));
        crate::infallible(ctx.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert!(ctx.store().is_empty());
    }

    #[test]
    fn memoization_off_always_runs() {
        let ctx = RunContext::new(1).with_memoization(false);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![1],
            calls: &calls,
            cacheable: true,
        };
        crate::infallible(ctx.run(&mut stage));
        crate::infallible(ctx.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn run_owned_moves_out_of_unique_arc() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Doubler {
            input: vec![5],
            calls: &calls,
            cacheable: false,
        };
        let owned: Vec<u64> = crate::infallible(ctx.run_owned(&mut stage));
        assert_eq!(owned, vec![10]);
    }

    #[test]
    fn rng_salt_matches_legacy_xor_derivation() {
        use rand::RngCore;
        let ctx = RunContext::new(42);
        let mut a = ctx.rng(0x5eed);
        let mut b = StdRng::seed_from_u64(42 ^ 0x5eed);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Stage that draws `ctx.rng` with a fixed salt during `run`.
    struct Salty {
        stage_id: &'static str,
        salt: u64,
    }

    impl Stage for Salty {
        type Output = u64;
        type Error = Infallible;

        fn id(&self) -> &'static str {
            self.stage_id
        }

        fn fingerprint(&self) -> Fingerprint {
            Fingerprint::null()
        }

        fn cacheable(&self) -> bool {
            false
        }

        fn run(&mut self, ctx: &RunContext) -> Result<u64, Infallible> {
            use rand::RngCore;
            Ok(ctx.rng(self.salt).next_u64())
        }
    }

    #[test]
    fn distinct_salts_and_redraws_pass_the_salt_ledger() {
        let ctx = RunContext::new(1);
        let mut a = Salty {
            stage_id: "test.salty-a",
            salt: 0x5a17,
        };
        // The same stage may redraw its own salt (re-runs, retries)...
        crate::infallible(ctx.run(&mut a));
        crate::infallible(ctx.run(&mut a));
        // ...and a different stage with a different salt is the intended
        // pattern.
        let mut b = Salty {
            stage_id: "test.salty-b",
            salt: 0xb017,
        };
        crate::infallible(ctx.run(&mut b));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "cross-stage salt collision")]
    fn cross_stage_salt_collision_trips_in_debug() {
        let ctx = RunContext::new(1);
        let mut a = Salty {
            stage_id: "test.salty-a",
            salt: 0x5a17,
        };
        let mut b = Salty {
            stage_id: "test.salty-b",
            salt: 0x5a17,
        };
        crate::infallible(ctx.run(&mut a));
        crate::infallible(ctx.run(&mut b));
    }

    /// Fails the first `failures` executions, then succeeds.
    struct Flaky<'a> {
        failures: usize,
        calls: &'a AtomicUsize,
        supervision: crate::Supervision,
    }

    impl Stage for Flaky<'_> {
        type Output = u64;
        type Error = &'static str;

        fn id(&self) -> &'static str {
            "test.flaky"
        }

        fn fingerprint(&self) -> Fingerprint {
            Fingerprint::null()
        }

        fn cacheable(&self) -> bool {
            false
        }

        fn supervision(&self) -> crate::Supervision {
            self.supervision
        }

        fn run(&mut self, _ctx: &RunContext) -> Result<u64, &'static str> {
            let call = self.calls.fetch_add(1, Ordering::Relaxed);
            if call < self.failures {
                Err("injected failure")
            } else {
                Ok(call as u64)
            }
        }
    }

    #[test]
    fn retry_ladder_recovers_and_records() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Flaky {
            failures: 2,
            calls: &calls,
            supervision: crate::Supervision::retry(3),
        };
        assert_eq!(ctx.run(&mut stage).map(|v| *v), Ok(2));
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(ctx.health().count(FaultKind::StageFailure), 2);
        assert_eq!(
            ctx.health()
                .count_action(RecoveryAction::RetriedWithBackoff),
            2
        );
    }

    #[test]
    fn exhausted_retries_surface_the_error() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Flaky {
            failures: 10,
            calls: &calls,
            supervision: crate::Supervision::retry(2),
        };
        assert_eq!(ctx.run(&mut stage).map(|v| *v), Err("injected failure"));
        assert_eq!(calls.load(Ordering::Relaxed), 3, "1 try + 2 retries");
        // 2 retry events + 1 exhaustion event.
        assert_eq!(ctx.health().count(FaultKind::StageFailure), 3);
    }

    #[test]
    fn fail_fast_stage_never_retries() {
        let ctx = RunContext::new(1);
        let calls = AtomicUsize::new(0);
        let mut stage = Flaky {
            failures: 10,
            calls: &calls,
            supervision: crate::Supervision::fail_fast(),
        };
        assert!(ctx.run(&mut stage).is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1);
        assert!(ctx.health().is_clean());
    }

    #[test]
    fn deadline_overrun_is_recorded_via_injected_clock() {
        // Deterministic clock: advances 100 "ms" per reading.
        let ticks = Arc::new(AtomicU64::new(0));
        let source = Arc::clone(&ticks);
        let clock = Clock::new(move || source.fetch_add(100, Ordering::Relaxed));
        let ctx = RunContext::new(1).with_clock(clock);
        let calls = AtomicUsize::new(0);
        let mut stage = Flaky {
            failures: 0,
            calls: &calls,
            supervision: crate::Supervision::fail_fast().with_deadline_ms(50),
        };
        assert!(ctx.run(&mut stage).is_ok());
        assert_eq!(ctx.health().count(FaultKind::DeadlineExceeded), 1);
        // A generous deadline stays quiet.
        let mut relaxed = Flaky {
            failures: 0,
            calls: &calls,
            supervision: crate::Supervision::fail_fast().with_deadline_ms(10_000),
        };
        assert!(ctx.run(&mut relaxed).is_ok());
        assert_eq!(ctx.health().count(FaultKind::DeadlineExceeded), 1);
    }

    /// Cacheable, durable stage: doubles its input and persists via the
    /// codec, so disk hits can be distinguished from recomputes by the
    /// call counter.
    struct DurableDoubler<'a> {
        input: Vec<u64>,
        calls: &'a AtomicUsize,
    }

    impl Stage for DurableDoubler<'_> {
        type Output = Vec<u64>;
        type Error = core::convert::Infallible;

        fn id(&self) -> &'static str {
            "test.durable-doubler"
        }

        fn fingerprint(&self) -> Fingerprint {
            self.input.fingerprint()
        }

        fn plan_sensitive(&self) -> bool {
            false
        }

        fn durable(&self) -> bool {
            true
        }

        fn run(&mut self, _ctx: &RunContext) -> Result<Vec<u64>, Self::Error> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            Ok(self.input.iter().map(|v| v * 2).collect())
        }

        fn encode(&self, output: &Vec<u64>) -> Option<Vec<u8>> {
            let mut enc = crate::Enc::new();
            enc.put_usize(output.len());
            for &v in output {
                enc.put_u64(v);
            }
            Some(enc.into_bytes())
        }

        fn decode(&self, bytes: &[u8]) -> Option<Vec<u64>> {
            let mut dec = crate::Dec::new(bytes);
            let len = dec.usize_()?;
            let mut out = Vec::new();
            for _ in 0..len {
                out.push(dec.u64()?);
            }
            dec.done().then_some(out)
        }
    }

    fn temp_disk(tag: &str) -> Arc<DiskStore> {
        let root = std::env::temp_dir().join(format!("ig-ctx-{tag}-{}", std::process::id()));
        match std::fs::remove_dir_all(&root) {
            Ok(()) | Err(_) => {}
        }
        match DiskStore::open(root) {
            Ok(disk) => Arc::new(disk),
            Err(e) => {
                assert!(false, "open failed: {e}");
                unreachable!()
            }
        }
    }

    #[test]
    fn fresh_context_resumes_from_the_durable_tier() {
        let disk = temp_disk("resume");
        let calls = AtomicUsize::new(0);
        let writer = RunContext::new(7).with_disk(disk.clone());
        let mut stage = DurableDoubler {
            input: vec![1, 2, 3],
            calls: &calls,
        };
        let first = crate::infallible(writer.run(&mut stage));
        assert_eq!(*first, vec![2, 4, 6]);
        assert_eq!(disk.stats().writes, 1);

        // A brand-new context (fresh memory store, same seed) simulates a
        // restarted process: the artifact must come from disk, decoded
        // bit-identically, without re-executing the stage.
        let resumed = RunContext::new(7).with_disk(disk.clone());
        let second = crate::infallible(resumed.run(&mut stage));
        assert_eq!(*second, *first);
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no recompute on resume");
        assert_eq!(resumed.stage_runs(), 0);
        assert_eq!(disk.stats().hits, 1);

        // A different seed keys differently and must recompute.
        let reseeded = RunContext::new(8).with_disk(disk.clone());
        crate::infallible(reseeded.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn corrupt_durable_artifact_is_quarantined_and_recomputed() {
        let disk = temp_disk("corrupt");
        let calls = AtomicUsize::new(0);
        let writer = RunContext::new(7).with_disk(disk.clone());
        let mut stage = DurableDoubler {
            input: vec![9],
            calls: &calls,
        };
        let first = crate::infallible(writer.run(&mut stage));
        // Corrupt the file on disk behind the store's back.
        let key = writer.cache_key(&stage);
        let path = disk.artifact_path(stage.id(), key);
        let mut bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                assert!(false, "read failed: {e}");
                return;
            }
        };
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x40;
        }
        match std::fs::write(&path, &bytes) {
            Ok(()) => {}
            Err(e) => {
                assert!(false, "write failed: {e}");
                return;
            }
        }
        let resumed = RunContext::new(7).with_disk(disk.clone());
        let recomputed = crate::infallible(resumed.run(&mut stage));
        assert_eq!(*recomputed, *first, "recompute, never serve corruption");
        assert_eq!(calls.load(Ordering::Relaxed), 2);
        assert_eq!(
            resumed.health().count(FaultKind::ArtifactCorruption),
            1,
            "corruption recorded in the health report"
        );
        assert_eq!(disk.stats().quarantined, 1);
        // The recompute rewrote a clean artifact: a third context hits disk.
        let third = RunContext::new(7).with_disk(disk.clone());
        crate::infallible(third.run(&mut stage));
        assert_eq!(calls.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn concurrent_durable_runs_share_one_flight() {
        // Two contexts with *separate* memory stores over one disk root
        // stand in for two processes: the durable stage must execute once
        // — one producer, everyone else waits and decodes.
        let disk = temp_disk("flight");
        let calls = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..3)
                .map(|_| {
                    scope.spawn(|| {
                        let ctx = RunContext::new(11).with_disk(disk.clone());
                        let mut stage = DurableDoubler {
                            input: vec![6, 7],
                            calls: &calls,
                        };
                        crate::infallible(ctx.run(&mut stage)).as_ref().clone()
                    })
                })
                .collect();
            for worker in workers {
                match worker.join() {
                    Ok(out) => assert_eq!(out, vec![12, 14]),
                    Err(_) => assert!(false, "worker panicked"),
                }
            }
        });
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "single-flight: exactly one producer per store root"
        );
        assert_eq!(disk.stats().writes, 1);
    }

    #[test]
    fn eviction_then_refetch_recomputes_deterministically() {
        let ctx = RunContext::new(3).with_store_capacity(1);
        let calls = AtomicUsize::new(0);
        let mut a = DurableDoubler {
            input: vec![10, 20],
            calls: &calls,
        };
        let mut b = DurableDoubler {
            input: vec![30],
            calls: &calls,
        };
        let first = crate::infallible(ctx.run(&mut a)).as_ref().clone();
        // Inserting `b` evicts `a` (capacity 1, no live Arc held).
        crate::infallible(ctx.run(&mut b));
        assert_eq!(ctx.store().len(), 1);
        let refetched = crate::infallible(ctx.run(&mut a));
        assert_eq!(*refetched, first, "recompute is bit-identical");
        assert_eq!(calls.load(Ordering::Relaxed), 3, "a ran twice, b once");
    }

    #[test]
    fn faulted_plan_skips_nothing_but_chaos_arms_stay_apart_on_disk() {
        // A plan-insensitive durable stage shares its artifact across
        // arms; a plan-sensitive one must not collide on disk either.
        let disk = temp_disk("arms");
        let calls = AtomicUsize::new(0);
        let clean = RunContext::new(5).with_disk(disk.clone());
        let chaotic = clean.clone().with_plan(Some(FaultPlan::chaos(5)));
        let mut stage = DurableDoubler {
            input: vec![4],
            calls: &calls,
        };
        crate::infallible(clean.run(&mut stage));
        crate::infallible(chaotic.run(&mut stage));
        // Plan-insensitive: the chaos arm reuses the clean artifact from
        // the shared memory tier.
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }
}
