//! Property tests on the neural-network substrate: linear algebra laws,
//! parameter round-trips, optimizer convergence on random convex
//! problems, spectral-norm guarantees, and optimizer robustness under
//! adversarial (NaN/Inf/huge) inputs from `ig-faults`.

use ig_faults::inject::{adversarial_labels, adversarial_matrix};
use ig_faults::FaultPlan;
use ig_nn::activation::{sigmoid, softmax_rows};
use ig_nn::lbfgs::{minimize, minimize_robust, LbfgsConfig, RestartConfig};
use ig_nn::mlp::{Loss, Mlp, MlpConfig, Targets};
use ig_nn::spectral::SpectralNorm;
use ig_nn::{Activation, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_matrix(rows: usize, cols: usize, seed: u64, scale: f32) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..scale))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..5, n in 1usize..5, p in 1usize..5, seed in any::<u64>(),
    ) {
        let a = random_matrix(m, n, seed, 1.0);
        let b = random_matrix(n, p, seed ^ 1, 1.0);
        let mut c = random_matrix(n, p, seed ^ 2, 1.0);
        // A(B + C) = AB + AC
        let mut b_plus_c = b.clone();
        b_plus_c.axpy(1.0, &c);
        let left = a.matmul(&b_plus_c);
        let mut right = a.matmul(&b);
        right.axpy(1.0, &a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        c.map_in_place(|v| v); // silence unused-mut lint paths
    }

    #[test]
    fn mlp_params_roundtrip(
        input in 1usize..6,
        h1 in 1usize..6,
        out in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut mlp = Mlp::new(&MlpConfig::new(input, vec![h1], out), &mut rng).unwrap();
        let original = mlp.params();
        prop_assert_eq!(original.len(), mlp.num_params());
        let perturbed: Vec<f32> = original.iter().map(|&v| v * 2.0 + 0.1).collect();
        mlp.set_params(&perturbed);
        prop_assert_eq!(mlp.params(), perturbed);
    }

    #[test]
    fn mlp_forward_is_deterministic(
        seed in any::<u64>(),
        rows in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mlp = Mlp::new(
            &MlpConfig {
                input_dim: 3,
                hidden: vec![4],
                output_dim: 2,
                activation: Activation::Tanh,
                l2: 0.0,
            },
            &mut rng,
        ).unwrap();
        let x = random_matrix(rows, 3, seed ^ 7, 2.0);
        let a = mlp.forward(&x);
        let b = mlp.forward(&x);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sigmoid_is_monotone(a in -30.0f32..30.0, b in -30.0f32..30.0) {
        if a < b {
            prop_assert!(sigmoid(a) <= sigmoid(b) + 1e-7);
        }
    }

    #[test]
    fn softmax_argmax_matches_logit_argmax(
        logits in proptest::collection::vec(-10.0f32..10.0, 2..6),
    ) {
        let m = Matrix::from_rows(std::slice::from_ref(&logits));
        let p = softmax_rows(&m);
        let logit_argmax = logits
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        let prob_argmax = p.row(0)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        prop_assert_eq!(logit_argmax, prob_argmax);
    }

    #[test]
    fn lbfgs_solves_random_diagonal_quadratics(
        scales in proptest::collection::vec(0.1f32..10.0, 1..8),
        targets in proptest::collection::vec(-5.0f32..5.0, 1..8),
    ) {
        let n = scales.len().min(targets.len());
        let scales = &scales[..n];
        let targets = &targets[..n];
        let result = minimize(
            |x| {
                let mut loss = 0.0f32;
                let mut grad = vec![0.0f32; n];
                for i in 0..n {
                    let d = x[i] - targets[i];
                    loss += 0.5 * scales[i] * d * d;
                    grad[i] = scales[i] * d;
                }
                (loss, grad)
            },
            vec![0.0; n],
            &LbfgsConfig { max_iters: 200, ..Default::default() },
        );
        for (x, t) in result.x.iter().zip(targets) {
            prop_assert!((x - t).abs() < 1e-2, "{x} vs {t}");
        }
    }

    #[test]
    fn spectral_normalization_caps_the_norm(
        rows in 2usize..8,
        cols in 2usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut w = Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-3.0..3.0f32));
        let mut sn = SpectralNorm::new(rows, cols, &mut rng);
        sn.normalize_weight(&mut w, 100);
        let mut check = SpectralNorm::new(rows, cols, &mut rng);
        let sigma = check.estimate(&w, 200);
        // Power iteration from one random start can under-estimate sigma
        // when the top singular values are close, so normalization divides
        // by a slightly-too-small value; allow that estimation slack. (In
        // GAN training the persistent state across steps closes the gap.)
        prop_assert!(sigma <= 1.1, "post-norm sigma {sigma}");
    }

    // ---------------- robustness under adversarial inputs ----------------

    #[test]
    fn minimize_robust_params_stay_finite_under_poisoned_objective(
        n in 1usize..8,
        seed in any::<u64>(),
        poison_rate in 0.0f64..0.6,
    ) {
        // A well-behaved quadratic whose evaluations are randomly poisoned
        // with NaN per a fault plan: the optimizer may diverge, but the
        // returned parameters must always be finite.
        let plan = FaultPlan {
            seed,
            lbfgs_poison_rate: poison_rate,
            ..FaultPlan::default()
        };
        let mut evals = 0usize;
        let (result, _restarts) = minimize_robust(
            |x| {
                let mut loss = 0.0f32;
                let mut grad = vec![0.0f32; x.len()];
                for (g, &xi) in grad.iter_mut().zip(x) {
                    loss += 0.5 * (xi - 1.0) * (xi - 1.0);
                    *g = xi - 1.0;
                }
                let i = evals;
                evals += 1;
                if plan.poison_loss(i) {
                    loss = f32::NAN;
                }
                (loss, grad)
            },
            vec![0.0; n],
            &LbfgsConfig { max_iters: 60, ..Default::default() },
            &RestartConfig::default(),
        );
        prop_assert!(result.x.iter().all(|v| v.is_finite()));
        if !result.diverged {
            prop_assert!(result.loss.is_finite());
        }
    }

    #[test]
    fn minimize_robust_sanitizes_adversarial_start_points(
        n in 1usize..8,
        seed in any::<u64>(),
    ) {
        // Start point drawn from the adversarial pool (NaN/Inf/huge cells):
        // non-finite coordinates are sanitized before the first attempt.
        // Huge-but-finite coordinates (1e30) can still overflow a
        // quadratic into Inf, which is a legitimate divergence — but the
        // returned parameters must be finite either way, and a run that
        // claims success must actually have reached the minimum.
        let x0 = adversarial_matrix(1, n, seed, 0.5).as_slice().to_vec();
        let (result, _restarts) = minimize_robust(
            |x| {
                let mut loss = 0.0f32;
                let mut grad = vec![0.0f32; x.len()];
                for (g, &xi) in grad.iter_mut().zip(x) {
                    loss += 0.5 * xi * xi;
                    *g = xi;
                }
                (loss, grad)
            },
            x0,
            &LbfgsConfig { max_iters: 120, ..Default::default() },
            &RestartConfig::default(),
        );
        prop_assert!(result.x.iter().all(|v| v.is_finite()));
        if !result.diverged {
            prop_assert!(result.x.iter().all(|v| v.abs() < 1e-2), "{:?}", result.x);
        }
    }

    #[test]
    fn mlp_fit_robust_on_adversarial_data_keeps_params_finite(
        rows in 2usize..12,
        cols in 1usize..5,
        seed in any::<u64>(),
        hostile_rate in 0.0f64..0.4,
    ) {
        let x = adversarial_matrix(rows, cols, seed, hostile_rate);
        let labels = adversarial_labels(rows, seed ^ 0x5bd1);
        let targets_m = ig_nn::Matrix::from_vec(
            rows, 1, labels.iter().map(|&l| l as f32).collect());
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37);
        let mut mlp = Mlp::new(&MlpConfig::new(cols, vec![4], 1), &mut rng).unwrap();
        let (result, _restarts) = mlp
            .fit_lbfgs_robust(
                &x,
                &Targets::Binary(&targets_m),
                Loss::Bce,
                &LbfgsConfig { max_iters: 40, ..Default::default() },
                &RestartConfig::default(),
            )
            .unwrap();
        prop_assert!(result.x.iter().all(|v| v.is_finite()));
        prop_assert!(mlp.params().iter().all(|v| v.is_finite()));
    }
}
