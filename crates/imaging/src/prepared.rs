//! Prepared-operand NCC matching: each side's preprocessing, built once.
//!
//! [`crate::ncc::match_template_pyramid`] rebuilds the image's Gaussian
//! pyramid and per-level integral tables on every call, and re-derives the
//! pattern's reduced + mean-centred stack just as often. Over the N×M
//! (image × pattern) feature grid in `ig-core` that preprocessing is pure
//! redundancy — the pyramid of image `I` is the same for all M patterns,
//! and the level stack of pattern `P` is the same for all N images.
//!
//! [`PreparedImage`] and [`PreparedPattern`] hoist that work to one build
//! per operand; [`match_prepared`] / [`match_prepared_exact`] then return
//! scores **bit-identical** to the per-call matchers (pinned by the parity
//! tests below and by proptests in `ig-core`). [`PreparedPattern`]
//! additionally caches the aspect-preserving "fitted" shrinks needed when
//! a pattern overflows an image, keyed by target dimensions, so the
//! resize runs once per distinct image shape instead of once per image.

use crate::fft::{cross_correlation, Fft, Spectrum};
use crate::ncc::{
    insert_topk, levels_for_pattern, ncc_row_sweep, pearson_at, validate, window_variance_term,
    CenteredPattern, ImageSums, MatchResult, PyramidMatchConfig,
};
use crate::planner::{padded_dims, CorrStrategy, NccPlanner};
use crate::pyramid::Pyramid;
use crate::resize::resize_bilinear;
use crate::{GrayImage, ImagingError, Result};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Image-side spectrum cache entries: pyramid level → padded spectrum.
type LevelSpectrum = (usize, Arc<Spectrum>);

/// A search image preprocessed for repeated matching: the Gaussian
/// pyramid plus value/square integral tables of every level, the NCC
/// strategy planner, and lazily-built padded spectra for levels the
/// planner routes through the FFT path.
#[derive(Debug)]
pub struct PreparedImage {
    pyramid: Pyramid,
    sums: Vec<ImageSums>,
    /// Sweep-vs-FFT verdicts and twiddle plans, memoised per pairing.
    planner: NccPlanner,
    /// Forward transforms of pyramid levels, keyed by level index; built
    /// on first FFT-path scan of that level, shared by every pattern.
    spectra: Mutex<Vec<LevelSpectrum>>,
}

impl Clone for PreparedImage {
    /// Cloning carries the pyramid and integral tables; the planner and
    /// spectrum caches are derived data and restart cold.
    fn clone(&self) -> Self {
        Self {
            pyramid: self.pyramid.clone(),
            sums: self.sums.clone(),
            planner: NccPlanner::new(),
            spectra: Mutex::new(Vec::new()),
        }
    }
}

impl PreparedImage {
    /// Preprocess `image` under `config`: build the deepest pyramid any
    /// pattern may request (`config.max_levels`) and the integral tables
    /// of every level. A pattern needing fewer levels uses a prefix of
    /// the stack — prefix levels are identical to what the per-call
    /// matcher would rebuild, because each level depends only on the one
    /// above it and the same early-stop dimension rules apply.
    pub fn new(image: &GrayImage, config: &PyramidMatchConfig) -> Self {
        let pyramid = Pyramid::build(image, config.max_levels.max(1), 2);
        let sums = pyramid.levels().iter().map(ImageSums::new).collect();
        Self {
            pyramid,
            sums,
            planner: NccPlanner::new(),
            spectra: Mutex::new(Vec::new()),
        }
    }

    /// The full-resolution image.
    pub fn image(&self) -> &GrayImage {
        self.pyramid.level(0)
    }

    /// Full-resolution dimensions.
    pub fn dims(&self) -> (usize, usize) {
        self.image().dims()
    }

    /// Number of cached pyramid levels (≥ 1).
    pub fn num_levels(&self) -> usize {
        self.pyramid.num_levels()
    }

    /// The padded forward transform of pyramid level `lvl`, built on
    /// first use and shared by every pattern scanned over this image.
    /// FFT plans come first (their lock is released before the spectrum
    /// lock is taken); building inside the spectrum lock guarantees one
    /// forward transform per level under concurrent workers.
    fn level_spectrum(&self, lvl: usize) -> Result<Arc<Spectrum>> {
        let dims = self
            .pyramid
            .level_dims(lvl)
            .ok_or(ImagingError::EmptyImage)?;
        let (w2, h2) = padded_dims(dims).ok_or(ImagingError::EmptyImage)?;
        let row = self.planner.fft_plan(w2)?;
        let col = self.planner.fft_plan(h2)?;
        let mut cache = self.spectra.lock();
        if let Some((_, hit)) = cache.iter().find(|(key, _)| *key == lvl) {
            return Ok(Arc::clone(hit));
        }
        let spec = Arc::new(Spectrum::forward(self.pyramid.level(lvl), &row, &col)?);
        cache.push((lvl, Arc::clone(&spec)));
        Ok(spec)
    }

    /// Number of level spectra built so far (test/diagnostic hook).
    pub fn spectra_cached(&self) -> usize {
        self.spectra.lock().len()
    }

    /// Approximate heap footprint, in bytes: every pyramid level, both
    /// integral tables per level, and any spectra cached so far. An
    /// estimate for the out-of-core shard budgeter, not an accounting —
    /// but it must track the dominant buffers, including caches that
    /// grow after construction.
    pub fn approx_bytes(&self) -> usize {
        let spectra: usize = {
            let cache = self.spectra.lock();
            cache.iter().map(|(_, spec)| spec.approx_bytes()).sum()
            // Lock dropped before any further work: this estimator takes
            // one lock at a time, always in its own scope.
        };
        self.pyramid.approx_bytes()
            + self.sums.iter().map(ImageSums::approx_bytes).sum::<usize>()
            + spectra
    }
}

/// One pyramid level of a prepared pattern.
#[derive(Debug, Clone)]
struct PatternLevel {
    reduced: GrayImage,
    centered: CenteredPattern,
}

impl PatternLevel {
    fn of(image: GrayImage) -> PatternLevel {
        let centered = CenteredPattern::new(&image);
        PatternLevel {
            reduced: image,
            centered,
        }
    }
}

/// Fitted-variant cache entries: target image dims → the shrunk pattern.
type FittedEntry = ((usize, usize), Arc<PreparedPattern>);

/// Pattern-side spectrum cache entries: (level, padded w, padded h) →
/// the centred pattern's forward transform on that grid. Keyed by padded
/// dims because different image shapes pad to different grids.
type PatternSpectrum = ((usize, usize, usize), Arc<Spectrum>);

/// A pattern preprocessed for repeated matching: the reduced +
/// mean-centred stack for every pyramid level, plus a cache of
/// aspect-preserving "fitted" shrinks for images the pattern overflows.
#[derive(Debug)]
pub struct PreparedPattern {
    /// `levels[0]` is the original pattern; level `l` is reduced by `2^l`.
    levels: Vec<PatternLevel>,
    /// Config the stack was built under; fitted variants reuse it so their
    /// level stacks match what the per-call path would derive.
    config: PyramidMatchConfig,
    /// Fitted variants keyed by target dims. A `Vec` linear scan: distinct
    /// image shapes are few and iteration order stays deterministic.
    fitted: Mutex<Vec<FittedEntry>>,
    /// Number of fitted variants ever built (each costs one resize).
    fit_builds: AtomicUsize,
    /// Centred-pattern spectra for FFT-path scans, keyed by
    /// (level, padded dims). Built on first use per distinct grid.
    spectra: Mutex<Vec<PatternSpectrum>>,
}

impl PreparedPattern {
    /// Preprocess `pattern` under `config`: derive the level count exactly
    /// as the per-call matcher does, then store each level's reduced image
    /// and mean-centred form.
    pub fn new(pattern: &GrayImage, config: &PyramidMatchConfig) -> Result<Self> {
        let count = levels_for_pattern(pattern.width().min(pattern.height()), config);
        let mut levels = Vec::with_capacity(count);
        levels.push(PatternLevel::of(pattern.clone()));
        for lvl in 1..count {
            let scale = 1usize << lvl;
            let pw = (pattern.width() / scale).max(1);
            let ph = (pattern.height() / scale).max(1);
            levels.push(PatternLevel::of(resize_bilinear(pattern, pw, ph)?));
        }
        Ok(Self {
            levels,
            config: *config,
            fitted: Mutex::new(Vec::new()),
            fit_builds: AtomicUsize::new(0),
            spectra: Mutex::new(Vec::new()),
        })
    }

    /// The centred pattern of level `lvl` forward-transformed on the
    /// `row.len() × col.len()` padded grid, cached per (level, grid).
    fn level_spectrum(&self, lvl: usize, row: &Fft, col: &Fft) -> Result<Arc<Spectrum>> {
        let level = self.levels.get(lvl).ok_or(ImagingError::EmptyImage)?;
        let key = (lvl, row.len(), col.len());
        let mut cache = self.spectra.lock();
        if let Some((_, hit)) = cache.iter().find(|(k, _)| *k == key) {
            return Ok(Arc::clone(hit));
        }
        let spec = Arc::new(Spectrum::forward(&level.centered.centered, row, col)?);
        cache.push((key, Arc::clone(&spec)));
        Ok(spec)
    }

    /// Full-resolution pattern dimensions.
    pub fn dims(&self) -> (usize, usize) {
        self.levels.first().map_or((0, 0), |l| l.reduced.dims())
    }

    /// Number of pyramid levels in the stack (≥ 1).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The variant of this pattern to match against a `iw × ih` image:
    /// `None` when the pattern already fits, otherwise the same
    /// aspect-preserving shrink the per-call path computes — built once
    /// per distinct target dims and served from the cache afterwards.
    pub fn fitted_for(&self, iw: usize, ih: usize) -> Result<Option<Arc<PreparedPattern>>> {
        let (pw, ph) = self.dims();
        if pw == 0 || ph == 0 || (pw <= iw && ph <= ih) {
            return Ok(None);
        }
        let sx = iw as f32 / pw as f32;
        let sy = ih as f32 / ph as f32;
        let s = sx.min(sy).min(1.0);
        let nw = ((pw as f32 * s).floor() as usize).max(1);
        let nh = ((ph as f32 * s).floor() as usize).max(1);
        let mut cache = self.fitted.lock();
        if let Some((_, hit)) = cache.iter().find(|(dims, _)| *dims == (nw, nh)) {
            return Ok(Some(Arc::clone(hit)));
        }
        // Build while holding the lock: oversized patterns are rare, and
        // this guarantees exactly one resize per distinct target dims even
        // when several workers reach the same pattern concurrently.
        let Some(base) = self.levels.first() else {
            return Err(ImagingError::EmptyImage);
        };
        let shrunk = resize_bilinear(&base.reduced, nw, nh)?;
        let prepared = Arc::new(PreparedPattern::new(&shrunk, &self.config)?);
        self.fit_builds.fetch_add(1, Ordering::Relaxed);
        cache.push(((nw, nh), Arc::clone(&prepared)));
        Ok(Some(prepared))
    }

    /// How many fitted variants have been built so far. Regression hook:
    /// matching one oversized pattern against any number of same-sized
    /// images must report exactly one build.
    pub fn fit_builds(&self) -> usize {
        self.fit_builds.load(Ordering::Relaxed)
    }

    /// Approximate heap footprint, in bytes: every level's reduced and
    /// mean-centred plane, cached spectra, and every fitted variant
    /// (recursively). The fitted `Arc`s are cloned out of the lock before
    /// recursing so this estimator never holds two locks at once.
    pub fn approx_bytes(&self) -> usize {
        let own: usize = self
            .levels
            .iter()
            .map(|l| l.reduced.approx_bytes() + l.centered.centered.approx_bytes())
            .sum();
        let spectra: usize = {
            let cache = self.spectra.lock();
            cache.iter().map(|(_, spec)| spec.approx_bytes()).sum()
        };
        let variants: Vec<Arc<PreparedPattern>> = {
            let cache = self.fitted.lock();
            cache.iter().map(|(_, v)| Arc::clone(v)).collect()
        };
        own + spectra + variants.iter().map(|v| v.approx_bytes()).sum::<usize>()
    }
}

/// Exhaustive scan of `level` over the full-resolution image — the shared
/// tail of [`match_prepared_exact`] and the pyramid fallbacks. Identical
/// placement order and comparison to [`crate::ncc::match_template`].
fn scan_exact(image: &PreparedImage, level: &PatternLevel) -> Result<MatchResult> {
    let img = image.image();
    let Some(sums) = image.sums.first() else {
        return Err(ImagingError::EmptyImage);
    };
    let (pw, ph) = level.reduced.dims();
    let mut best = MatchResult {
        x: 0,
        y: 0,
        score: f32::NEG_INFINITY,
    };
    for y in 0..=(img.height() - ph) {
        for x in 0..=(img.width() - pw) {
            let s = pearson_at(img, &level.centered, x, y, sums);
            if s > best.score {
                best = MatchResult { x, y, score: s };
            }
        }
    }
    Ok(best)
}

/// Dense planner-dispatched scan of pattern level `lvl` over the same
/// pyramid level of `image`, emitting `(x, y, score)` for every valid
/// placement in row-major order.
///
/// Strategy comes from the image's [`NccPlanner`]: the sweep path is
/// bit-identical to `pearson_at`; the FFT path computes the numerator
/// spectrally and agrees only to float rounding (≤ 1e-4 absolute on
/// unit-range pixels — the documented tolerance of the approximate entry
/// points). Both paths share [`window_variance_term`]'s flat-window
/// cutoff, so degenerate placements score exactly 0.0 either way.
fn scan_dense(
    image: &PreparedImage,
    pattern: &PreparedPattern,
    lvl: usize,
    mut emit: impl FnMut(usize, usize, f32),
) -> Result<()> {
    let (Some(pat_lvl), Some(sums)) = (pattern.levels.get(lvl), image.sums.get(lvl)) else {
        return Err(ImagingError::EmptyImage);
    };
    let img = image.pyramid.level(lvl);
    let (iw, ih) = img.dims();
    let centered = &pat_lvl.centered;
    let (pw, ph) = (centered.w, centered.h);
    if pw == 0 || ph == 0 || pw > iw || ph > ih {
        return Err(ImagingError::TemplateTooLarge {
            template: (pw, ph),
            image: (iw, ih),
        });
    }
    match image.planner.strategy((iw, ih), (pw, ph)) {
        CorrStrategy::Sweep => {
            ncc_row_sweep(img, centered, sums, emit);
            Ok(())
        }
        CorrStrategy::Fft => {
            let (out_w, out_h) = (iw - pw + 1, ih - ph + 1);
            if centered.degenerate {
                for y in 0..out_h {
                    for x in 0..out_w {
                        emit(x, y, 0.0);
                    }
                }
                return Ok(());
            }
            let (w2, h2) = padded_dims((iw, ih)).ok_or(ImagingError::EmptyImage)?;
            let row = image.planner.fft_plan(w2)?;
            let col = image.planner.fft_plan(h2)?;
            let img_spec = image.level_spectrum(lvl)?;
            let pat_spec = pattern.level_spectrum(lvl, &row, &col)?;
            let nums = cross_correlation(&img_spec, &pat_spec, &row, &col, out_w, out_h)?;
            for y in 0..out_h {
                for x in 0..out_w {
                    let score = match window_variance_term(sums, x, y, pw, ph) {
                        None => 0.0,
                        Some(term) => {
                            let num = nums.get(y * out_w + x).copied().unwrap_or(0.0);
                            (num / (centered.norm * term.sqrt())).clamp(-1.0, 1.0) as f32
                        }
                    };
                    emit(x, y, score);
                }
            }
            Ok(())
        }
    }
}

/// Exact brute-force Pearson-NCC match from prepared operands.
/// Bit-identical to [`crate::ncc::match_template`] on the same inputs.
pub fn match_prepared_exact(
    image: &PreparedImage,
    pattern: &PreparedPattern,
) -> Result<MatchResult> {
    let Some(base) = pattern.levels.first() else {
        return Err(ImagingError::EmptyImage);
    };
    validate(image.image(), &base.reduced)?;
    scan_exact(image, base)
}

/// Coarse-to-fine pyramid Pearson-NCC match from prepared operands.
/// Bit-identical to [`crate::ncc::match_template_pyramid`] when both
/// operands were prepared under the same `config` passed here *and* the
/// planner keeps the coarse scan on the sweep path (always true below
/// [`crate::planner::MIN_FFT_PATTERN_AREA`], which covers every pinned
/// parity domain). When the FFT numerator is selected for a large coarse
/// pattern, candidate selection tolerates float rounding but the final
/// score is still produced by the exact refine pass.
pub fn match_prepared(
    image: &PreparedImage,
    pattern: &PreparedPattern,
    config: &PyramidMatchConfig,
) -> Result<MatchResult> {
    let Some(base) = pattern.levels.first() else {
        return Err(ImagingError::EmptyImage);
    };
    validate(image.image(), &base.reduced)?;
    // Same effective depth as the per-call path: the pattern's own level
    // count, clamped by how deep the image could actually be reduced.
    let levels = pattern.levels.len().min(image.num_levels());
    if levels == 1 {
        return scan_exact(image, base);
    }

    let coarse = levels - 1;
    let Some(coarse_lvl) = pattern.levels.get(coarse) else {
        return scan_exact(image, base);
    };
    if image.sums.get(coarse).is_none() {
        return scan_exact(image, base);
    }
    let coarse_img = image.pyramid.level(coarse);
    let coarse_pat = &coarse_lvl.reduced;
    if coarse_pat.width() > coarse_img.width() || coarse_pat.height() > coarse_img.height() {
        return scan_exact(image, base);
    }

    // Exhaustive scan at the coarsest level, keeping top-k candidates.
    // The planner may route this through the FFT numerator for large
    // coarse patterns; candidate *selection* then tolerates float-rounding
    // differences, while every returned score still comes from the exact
    // refine pass below.
    let mut candidates: Vec<MatchResult> = Vec::new();
    scan_dense(image, pattern, coarse, |x, y, score| {
        insert_topk(&mut candidates, MatchResult { x, y, score }, config.top_k);
    })?;

    // Refine candidates through finer levels.
    for lvl in (0..coarse).rev() {
        let (Some(pat_lvl), Some(sums)) = (pattern.levels.get(lvl), image.sums.get(lvl)) else {
            continue;
        };
        let img = image.pyramid.level(lvl);
        let pat = &pat_lvl.reduced;
        if pat.width() > img.width() || pat.height() > img.height() {
            continue;
        }
        let max_x = img.width() - pat.width();
        let max_y = img.height() - pat.height();
        let mut refined: Vec<MatchResult> = Vec::with_capacity(candidates.len());
        for cand in &candidates {
            // A coarse coordinate c maps to [2c - r, 2c + r] one level down.
            let cx = cand.x * 2;
            let cy = cand.y * 2;
            let x0 = cx.saturating_sub(config.refine_radius).min(max_x);
            let y0 = cy.saturating_sub(config.refine_radius).min(max_y);
            let x1 = (cx + config.refine_radius).min(max_x);
            let y1 = (cy + config.refine_radius).min(max_y);
            let mut best = MatchResult {
                x: x0,
                y: y0,
                score: f32::NEG_INFINITY,
            };
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let s = pearson_at(img, &pat_lvl.centered, x, y, sums);
                    if s > best.score {
                        best = MatchResult { x, y, score: s };
                    }
                }
            }
            refined.push(best);
        }
        candidates = refined;
    }

    candidates
        .into_iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .ok_or(ImagingError::EmptyImage)
}

/// Full-resolution dense score map from prepared operands, dispatched
/// through the planner. For patterns below the FFT crossover this is
/// bit-identical to [`crate::ncc::score_map`]; above it the numerator is
/// computed spectrally and each score agrees with the sweep to within
/// 1e-4 absolute on unit-range pixels (the documented tolerance of the
/// approximate entry points — use [`crate::ncc::score_map`] when exact
/// bits matter more than throughput).
pub fn score_map_prepared(image: &PreparedImage, pattern: &PreparedPattern) -> Result<GrayImage> {
    let Some(base) = pattern.levels.first() else {
        return Err(ImagingError::EmptyImage);
    };
    validate(image.image(), &base.reduced)?;
    let (iw, ih) = image.dims();
    let (pw, ph) = base.reduced.dims();
    let mut out = GrayImage::new(iw - pw + 1, ih - ph + 1);
    scan_dense(image, pattern, 0, |x, y, score| out.set(x, y, score))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ncc::{match_template, match_template_pyramid, score_map};
    use crate::planner::plan_strategy;

    fn textured(w: usize, h: usize, phase: f32) -> GrayImage {
        GrayImage::from_fn(w, h, |x, y| {
            0.4 + 0.25 * ((x as f32 * 0.31 + phase).sin() * (y as f32 * 0.17).cos())
        })
    }

    #[test]
    fn prepared_pyramid_bit_identical_to_per_call() {
        let cfg = PyramidMatchConfig::default();
        let img = textured(96, 72, 0.0);
        let pi = PreparedImage::new(&img, &cfg);
        for side in [5usize, 9, 16, 33] {
            let pat = img.crop(20, 10, side, side.min(40)).unwrap();
            let pp = PreparedPattern::new(&pat, &cfg).unwrap();
            let per_call = match_template_pyramid(&img, &pat, &cfg).unwrap();
            let prepared = match_prepared(&pi, &pp, &cfg).unwrap();
            assert_eq!(
                (per_call.x, per_call.y, per_call.score),
                (prepared.x, prepared.y, prepared.score),
                "side {side}"
            );
        }
    }

    #[test]
    fn prepared_exact_bit_identical_to_per_call() {
        let cfg = PyramidMatchConfig::default();
        let img = textured(48, 40, 1.3);
        let pat = img.crop(7, 11, 12, 9).unwrap();
        let pi = PreparedImage::new(&img, &cfg);
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        let per_call = match_template(&img, &pat).unwrap();
        let prepared = match_prepared_exact(&pi, &pp).unwrap();
        assert_eq!(
            (per_call.x, per_call.y, per_call.score),
            (prepared.x, prepared.y, prepared.score)
        );
    }

    #[test]
    fn one_prepared_image_serves_many_patterns() {
        let cfg = PyramidMatchConfig::default();
        let img = textured(80, 60, 0.7);
        let pi = PreparedImage::new(&img, &cfg);
        for (x, y, w, h) in [(0, 0, 6, 6), (30, 20, 14, 14), (50, 30, 22, 18)] {
            let pat = img.crop(x, y, w, h).unwrap();
            let pp = PreparedPattern::new(&pat, &cfg).unwrap();
            let per_call = match_template_pyramid(&img, &pat, &cfg).unwrap();
            let prepared = match_prepared(&pi, &pp, &cfg).unwrap();
            assert_eq!((per_call.x, per_call.y), (prepared.x, prepared.y));
            assert_eq!(per_call.score, prepared.score);
        }
    }

    #[test]
    fn prepared_validates_dims() {
        let cfg = PyramidMatchConfig::default();
        let img = GrayImage::filled(8, 8, 0.5);
        let pi = PreparedImage::new(&img, &cfg);
        let big = GrayImage::filled(12, 4, 0.5);
        let pp = PreparedPattern::new(&big, &cfg).unwrap();
        assert!(matches!(
            match_prepared(&pi, &pp, &cfg),
            Err(ImagingError::TemplateTooLarge { .. })
        ));
        let empty_img = PreparedImage::new(&GrayImage::new(0, 0), &cfg);
        let small = PreparedPattern::new(&GrayImage::filled(2, 2, 0.1), &cfg).unwrap();
        assert!(match_prepared(&empty_img, &small, &cfg).is_err());
    }

    #[test]
    fn fitted_cache_builds_once_per_target_dims() {
        let cfg = PyramidMatchConfig::default();
        let pat = textured(100, 100, 2.0);
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        // Pattern fits: no variant needed, nothing built.
        assert!(pp.fitted_for(120, 120).unwrap().is_none());
        assert_eq!(pp.fit_builds(), 0);
        // Oversized for a 32x24 image: one build, then cache hits.
        let a = pp.fitted_for(32, 24).unwrap().expect("needs a fit");
        let b = pp.fitted_for(32, 24).unwrap().expect("needs a fit");
        assert_eq!(pp.fit_builds(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.dims(), (24, 24)); // aspect preserved: min scale wins
                                        // A different image shape with a different target: second build.
        let c = pp.fitted_for(64, 20).unwrap().expect("needs a fit");
        assert_eq!(pp.fit_builds(), 2);
        assert_eq!(c.dims(), (20, 20));
    }

    #[test]
    fn fitted_variant_matches_what_per_call_path_computes() {
        let cfg = PyramidMatchConfig::default();
        let texture = |x: usize, y: usize, scale: f32| {
            0.5 + 0.3 * ((x as f32 * scale).sin() * (y as f32 * scale).cos())
        };
        let pat = GrayImage::from_fn(100, 100, |x, y| texture(x, y, 0.07));
        let img = GrayImage::from_fn(32, 24, |x, y| texture(x, y, 0.07 * 100.0 / 32.0));
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        let fitted = pp.fitted_for(32, 24).unwrap().expect("oversized");
        // Per-call equivalent: shrink with the same formula, then match.
        let s = (32.0f32 / 100.0).min(24.0 / 100.0).min(1.0);
        let nw = ((100.0 * s).floor() as usize).max(1);
        let nh = ((100.0 * s).floor() as usize).max(1);
        let shrunk = resize_bilinear(&pat, nw, nh).unwrap();
        let per_call = match_template_pyramid(&img, &shrunk, &cfg).unwrap();
        let pi = PreparedImage::new(&img, &cfg);
        let prepared = match_prepared(&pi, &fitted, &cfg).unwrap();
        assert_eq!((per_call.x, per_call.y), (prepared.x, prepared.y));
        assert_eq!(per_call.score, prepared.score);
    }

    #[test]
    fn score_map_prepared_bit_identical_below_crossover() {
        let cfg = PyramidMatchConfig::default();
        let img = textured(40, 30, 0.4);
        let pat = img.crop(5, 5, 9, 7).unwrap();
        let pi = PreparedImage::new(&img, &cfg);
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        assert_eq!(plan_strategy((40, 30), (9, 7)), CorrStrategy::Sweep);
        let fast = score_map_prepared(&pi, &pp).unwrap();
        let reference = score_map(&img, &pat).unwrap();
        assert_eq!(fast.dims(), reference.dims());
        for (a, b) in fast.pixels().iter().zip(reference.pixels()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(pi.spectra_cached(), 0, "sweep path must not build spectra");
    }

    #[test]
    fn score_map_prepared_fft_path_within_tolerance() {
        let cfg = PyramidMatchConfig::default();
        let img = textured(64, 64, 0.9);
        let pat = img.crop(13, 21, 18, 18).unwrap();
        // 18x18 = 324 sits above the 64x64 crossover, so this exercises
        // the spectral numerator end to end.
        assert_eq!(plan_strategy((64, 64), (18, 18)), CorrStrategy::Fft);
        let pi = PreparedImage::new(&img, &cfg);
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        let fast = score_map_prepared(&pi, &pp).unwrap();
        let reference = score_map(&img, &pat).unwrap();
        assert_eq!(fast.dims(), reference.dims());
        let mut max_err = 0.0f32;
        for (a, b) in fast.pixels().iter().zip(reference.pixels()) {
            max_err = max_err.max((a - b).abs());
        }
        assert!(max_err <= 1e-4, "fft vs sweep max err {max_err}");
        assert_eq!(pi.spectra_cached(), 1);
        // The peak must land on the planted crop either way.
        let m = match_prepared_exact(&pi, &pp).unwrap();
        assert_eq!((m.x, m.y), (13, 21));
        // A second pattern on the same image reuses the cached spectrum.
        let pat2 = img.crop(0, 0, 20, 20).unwrap();
        let pp2 = PreparedPattern::new(&pat2, &cfg).unwrap();
        let again = score_map_prepared(&pi, &pp2).unwrap();
        assert_eq!(again.dims(), (64 - 20 + 1, 64 - 20 + 1));
        assert_eq!(pi.spectra_cached(), 1, "image spectrum must be shared");
    }

    #[test]
    fn match_prepared_fft_coarse_scan_agrees_with_per_call() {
        // GAN-scale template: 128x128 crop of a 256x256 frame. At the
        // default 4-level stack the coarse scan sees a 16x16 pattern on a
        // 32x32 level, which crosses the FFT threshold. The per-call path
        // stays on the sweep everywhere, so agreement here pins that the
        // spectral candidates survive rounding and the exact refine pass
        // lands on the same placement with a bit-identical score.
        let cfg = PyramidMatchConfig::default();
        let img = textured(256, 256, 1.7);
        let pat = img.crop(61, 93, 128, 128).unwrap();
        assert_eq!(plan_strategy((32, 32), (16, 16)), CorrStrategy::Fft);
        let pi = PreparedImage::new(&img, &cfg);
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        let prepared = match_prepared(&pi, &pp, &cfg).unwrap();
        assert!(pi.spectra_cached() >= 1, "coarse scan should go spectral");
        let per_call = match_template_pyramid(&img, &pat, &cfg).unwrap();
        assert_eq!((per_call.x, per_call.y), (prepared.x, prepared.y));
        assert_eq!(per_call.score.to_bits(), prepared.score.to_bits());
        assert!(prepared.score > 0.99, "score {}", prepared.score);
    }

    #[test]
    fn approx_bytes_tracks_the_dominant_buffers() {
        let cfg = PyramidMatchConfig::default();
        let img = textured(64, 64, 0.9);
        let pi = PreparedImage::new(&img, &cfg);
        // At minimum: the base level's pixels plus its two f64 integral
        // tables. 64*64*4 + 2*65*65*8 — use the structural lower bound
        // rather than magic numbers.
        let pixel_floor = img.len() * core::mem::size_of::<f32>();
        let table_floor = 2 * (64 + 1) * (64 + 1) * core::mem::size_of::<f64>();
        let cold = pi.approx_bytes();
        assert!(
            cold >= pixel_floor + table_floor,
            "cold estimate {cold} below structural floor {}",
            pixel_floor + table_floor
        );
        // Driving the FFT path builds a level spectrum; the estimate must
        // see the cache grow.
        let pat = img.crop(13, 21, 18, 18).unwrap();
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        let pp_cold = pp.approx_bytes();
        assert!(pp_cold >= pat.len() * 2 * core::mem::size_of::<f32>());
        score_map_prepared(&pi, &pp).unwrap();
        assert!(
            pi.approx_bytes() > cold,
            "cached spectrum must grow the image estimate"
        );
        assert!(
            pp.approx_bytes() > pp_cold,
            "cached spectrum must grow the pattern estimate"
        );
        // Fitted variants count recursively.
        let big = PreparedPattern::new(&textured(100, 100, 2.0), &cfg).unwrap();
        let before = big.approx_bytes();
        big.fitted_for(32, 24).unwrap().expect("needs a fit");
        assert!(big.approx_bytes() > before, "fitted variant must count");
    }

    #[test]
    fn level_stack_matches_per_call_derivation() {
        let cfg = PyramidMatchConfig::default();
        // 32px shortest side: 32 -> 16 -> 8 -> 4 gives 4 levels at the
        // default min_pattern_side of 4 and max_levels of 4.
        let pp = PreparedPattern::new(&textured(40, 32, 0.1), &cfg).unwrap();
        assert_eq!(pp.num_levels(), 4);
        // Tiny pattern: single level, pyramid path falls back to exact.
        let tiny = PreparedPattern::new(&textured(5, 5, 0.2), &cfg).unwrap();
        assert_eq!(tiny.num_levels(), 1);
    }
}
