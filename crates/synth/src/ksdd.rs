//! KSDD simulacrum: electrical-commutator surfaces with crack defects.

use crate::defects::paint_crack;
use crate::spec::DatasetSpec;
use crate::surface::{commutator, corrupt_with_noise};
use crate::{Dataset, LabeledImage, TaskType};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Emit every image slot in generation (pre-shuffle) order, threading all
/// random draws through `rng` exactly as [`generate`] always has. The one
/// emission loop serves both the monolithic path and the out-of-core
/// replay ([`generate_range`]), so their RNG streams cannot drift apart.
fn emit(spec: &DatasetSpec, rng: &mut StdRng, sink: &mut dyn FnMut(LabeledImage)) {
    for i in 0..spec.n {
        let defective = i < spec.n_defective;
        let surface_seed = spec.seed.wrapping_mul(31).wrapping_add(i as u64);
        let mut image = commutator(surface_seed, spec.width, spec.height);
        let difficult = defective && rng.gen_bool(spec.difficult_fraction);
        let mut defect_boxes = Vec::new();
        if defective {
            let magnitude = if difficult {
                rng.gen_range(0.06..0.10)
            } else {
                rng.gen_range(0.25..0.45)
            };
            let count = if rng.gen_bool(0.2) { 2 } else { 1 };
            for _ in 0..count {
                defect_boxes.push(paint_crack(&mut image, rng, -magnitude));
            }
        }
        let noisy = rng.gen_bool(spec.noisy_fraction);
        if noisy {
            image = corrupt_with_noise(&image, surface_seed.wrapping_add(99), rng);
        }
        sink(LabeledImage {
            image,
            label: usize::from(defective),
            defect_boxes,
            noisy,
            difficult,
        });
    }
}

/// Generate the KSDD stand-in (Table 1 row 1): one defect type — cracks —
/// whose shape "varies significantly".
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut images = Vec::with_capacity(spec.n);
    emit(spec, &mut rng, &mut |img| images.push(img));
    images.shuffle(&mut rng);
    Dataset {
        name: "KSDD".to_string(),
        task: TaskType::Binary,
        images,
    }
}

/// Images `start..end` of [`generate`]'s (shuffled) output, bit-identical,
/// holding at most one off-shard image at a time — see
/// [`crate::replay_range`].
pub fn generate_range(spec: &DatasetSpec, start: usize, end: usize) -> Dataset {
    Dataset {
        name: "KSDD".to_string(),
        task: TaskType::Binary,
        images: crate::replay_range(spec, emit, start, end),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetKind;

    #[test]
    fn counts_match_spec() {
        let spec = DatasetSpec::quick(DatasetKind::Ksdd, 5);
        let d = generate(&spec);
        assert_eq!(d.len(), spec.n);
        assert_eq!(d.num_defective(), spec.n_defective);
    }

    #[test]
    fn defective_images_have_boxes_ok_images_do_not() {
        let spec = DatasetSpec::quick(DatasetKind::Ksdd, 6);
        let d = generate(&spec);
        for img in &d.images {
            if img.label == 1 {
                assert!(!img.defect_boxes.is_empty());
            } else {
                assert!(img.defect_boxes.is_empty());
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::quick(DatasetKind::Ksdd, 7);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images[0].image, b.images[0].image);
    }

    #[test]
    fn different_seeds_shuffle_differently() {
        let a = generate(&DatasetSpec::quick(DatasetKind::Ksdd, 1));
        let b = generate(&DatasetSpec::quick(DatasetKind::Ksdd, 2));
        assert!(a.labels() != b.labels() || a.images[0].image != b.images[0].image);
    }

    #[test]
    fn cracks_vary_in_shape() {
        // Aspect ratios of the gold boxes should spread out — that shape
        // variance is why policy augmentation helps on KSDD.
        let spec = DatasetSpec {
            n: 30,
            n_defective: 30,
            ..DatasetSpec::quick(DatasetKind::Ksdd, 8)
        };
        let d = generate(&spec);
        let mut ratios: Vec<f32> = d
            .images
            .iter()
            .flat_map(|i| i.defect_boxes.iter())
            .map(|b| b.w / b.h.max(1.0))
            .collect();
        ratios.sort_by(f32::total_cmp);
        let spread = ratios.last().unwrap() / ratios.first().unwrap().max(0.01);
        assert!(spread > 1.5, "crack shapes too uniform: spread {spread}");
    }
}
