//! Deterministic, seeded chaos plans.

use ig_imaging::stats::is_effectively_zero_f64;

/// Fault forced onto a GAN training epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GanFault {
    /// Make the losses explode / go non-finite.
    Diverge,
    /// Collapse the generator onto a single output mode.
    Collapse,
}

/// A deterministic chaos plan.
///
/// Every decision is a pure function of `(seed, site, index)` via a
/// SplitMix64 hash, so a plan injects the *same* faults on every run and
/// on every thread — no shared RNG, no ordering sensitivity. The default
/// plan has every rate at zero and every switch off: it injects nothing,
/// and pipelines treat `Some(&FaultPlan::default())` identically to
/// `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Probability a computed feature value is replaced by NaN.
    pub nan_feature_rate: f64,
    /// Probability a computed feature value is replaced by +/- infinity.
    pub inf_feature_rate: f64,
    /// Probability a crowd pattern is flattened to constant gray
    /// (zero variance — it can never match anything).
    pub degenerate_pattern_rate: f64,
    /// Probability a crowd worker silently produces no annotations.
    pub crowd_no_show_rate: f64,
    /// Probability a crowd worker is a spammer emitting random boxes.
    pub crowd_spammer_rate: f64,
    /// Probability a parallel feature-worker chunk panics mid-compute.
    pub worker_panic_rate: f64,
    /// Probability an L-BFGS evaluation returns a non-finite loss.
    pub lbfgs_poison_rate: f64,
    /// Probability a durable-store write lands truncated (a torn write:
    /// the file exists but its payload stops short of the declared length).
    pub torn_write_rate: f64,
    /// Probability one payload bit of a durable-store write is flipped
    /// after its checksum was computed (silent media corruption).
    pub artifact_bitflip_rate: f64,
    /// Probability a dead process's advisory lock file is left on an
    /// artifact just before the store tries to write it.
    pub stale_lock_rate: f64,
    /// Epoch at which GAN training is forced to misbehave, if any.
    pub gan_fault_epoch: Option<usize>,
    /// What the GAN fault looks like when `gan_fault_epoch` fires.
    pub gan_fault: GanFault,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self {
            seed: 0,
            nan_feature_rate: 0.0,
            inf_feature_rate: 0.0,
            degenerate_pattern_rate: 0.0,
            crowd_no_show_rate: 0.0,
            crowd_spammer_rate: 0.0,
            worker_panic_rate: 0.0,
            lbfgs_poison_rate: 0.0,
            torn_write_rate: 0.0,
            artifact_bitflip_rate: 0.0,
            stale_lock_rate: 0.0,
            gan_fault_epoch: None,
            gan_fault: GanFault::Diverge,
        }
    }
}

impl FaultPlan {
    /// Empty plan: injects nothing.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// Preset exercising every fault class at moderate rates.
    pub fn chaos(seed: u64) -> Self {
        Self {
            seed,
            nan_feature_rate: 0.02,
            inf_feature_rate: 0.01,
            degenerate_pattern_rate: 0.15,
            crowd_no_show_rate: 0.25,
            crowd_spammer_rate: 0.25,
            worker_panic_rate: 0.25,
            lbfgs_poison_rate: 0.02,
            gan_fault_epoch: Some(1),
            gan_fault: GanFault::Diverge,
            ..Self::default()
        }
    }

    /// Preset exercising only the durable-store fault classes (torn
    /// writes, bit flips, stale locks) at rates high enough that a
    /// handful of artifacts hits every class.
    pub fn durability(seed: u64) -> Self {
        Self {
            seed,
            torn_write_rate: 0.3,
            artifact_bitflip_rate: 0.3,
            stale_lock_rate: 0.3,
            ..Self::default()
        }
    }

    /// True when the plan can never inject anything. Rates below the
    /// effective-zero threshold count as off: `decide` compares a hash
    /// against `rate`, and a denormal-small rate never wins a draw.
    pub fn is_empty(&self) -> bool {
        [
            self.nan_feature_rate,
            self.inf_feature_rate,
            self.degenerate_pattern_rate,
            self.crowd_no_show_rate,
            self.crowd_spammer_rate,
            self.worker_panic_rate,
            self.lbfgs_poison_rate,
            self.torn_write_rate,
            self.artifact_bitflip_rate,
            self.stale_lock_rate,
        ]
        .iter()
        .all(|&r| is_effectively_zero_f64(r))
            && self.gan_fault_epoch.is_none()
    }

    /// Deterministic biased coin for `(site, index)` at probability `rate`.
    pub fn decide(&self, site: &str, index: u64, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        let mut h = self.seed ^ 0x9E3779B97F4A7C15;
        for b in site.bytes() {
            h = h.wrapping_mul(0x100000001B3) ^ b as u64;
        }
        h ^= index.wrapping_mul(0xD1B54A32D192ED03);
        let unit = (splitmix64(h) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < rate
    }

    /// Corrupt one feature value per the NaN/Inf rates. Returns the value
    /// unchanged when no fault fires for this `(row, col)` cell.
    pub fn corrupt_feature(&self, row: usize, col: usize, value: f32) -> f32 {
        let index = (row as u64) << 32 | col as u64;
        if self.decide("feature-nan", index, self.nan_feature_rate) {
            f32::NAN
        } else if self.decide("feature-inf", index, self.inf_feature_rate) {
            if index & 1 == 0 {
                f32::INFINITY
            } else {
                f32::NEG_INFINITY
            }
        } else {
            value
        }
    }

    /// Should pattern `idx` be flattened to constant gray?
    pub fn degenerate_pattern(&self, idx: usize) -> bool {
        self.decide(
            "degenerate-pattern",
            idx as u64,
            self.degenerate_pattern_rate,
        )
    }

    /// Should crowd worker `idx` be a no-show?
    pub fn crowd_no_show(&self, idx: usize) -> bool {
        self.decide("crowd-no-show", idx as u64, self.crowd_no_show_rate)
    }

    /// Should crowd worker `idx` be a spammer? (No-show wins when both fire.)
    pub fn crowd_spammer(&self, idx: usize) -> bool {
        !self.crowd_no_show(idx)
            && self.decide("crowd-spammer", idx as u64, self.crowd_spammer_rate)
    }

    /// Should feature-worker chunk `idx` panic?
    pub fn worker_panic(&self, idx: usize) -> bool {
        self.decide("worker-panic", idx as u64, self.worker_panic_rate)
    }

    /// Should L-BFGS evaluation `iter` return a poisoned (NaN) loss?
    pub fn poison_loss(&self, iter: usize) -> bool {
        self.decide("lbfgs-poison", iter as u64, self.lbfgs_poison_rate)
    }

    /// Should the durable write of artifact `key` land truncated?
    /// `key` is the low word of the artifact's content fingerprint, so
    /// the decision is a pure function of *which* artifact is written.
    pub fn torn_write(&self, key: u64) -> bool {
        self.decide("store-torn-write", key, self.torn_write_rate)
    }

    /// Should one payload bit of artifact `key` be flipped after its
    /// checksum was computed? (Torn write wins when both fire.)
    pub fn artifact_bitflip(&self, key: u64) -> bool {
        !self.torn_write(key) && self.decide("store-bitflip", key, self.artifact_bitflip_rate)
    }

    /// Should a dead process's lock file be planted on artifact `key`
    /// just before the store writes it?
    pub fn stale_lock(&self, key: u64) -> bool {
        self.decide("store-stale-lock", key, self.stale_lock_rate)
    }

    /// GAN fault scheduled for `epoch`, if any.
    pub fn gan_fault_at(&self, epoch: usize) -> Option<GanFault> {
        match self.gan_fault_epoch {
            Some(e) if e == epoch => Some(self.gan_fault),
            _ => None,
        }
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_injects_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for i in 0..1000 {
            assert!(!plan.degenerate_pattern(i));
            assert!(!plan.worker_panic(i));
            assert!(!plan.poison_loss(i));
            assert!(plan.corrupt_feature(i, i, 0.5).is_finite());
        }
        assert_eq!(plan.gan_fault_at(0), None);
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::chaos(42);
        let b = FaultPlan::chaos(42);
        for i in 0..500 {
            assert_eq!(a.decide("site", i, 0.3), b.decide("site", i, 0.3));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::chaos(1);
        let b = FaultPlan::chaos(2);
        let disagreements = (0..500)
            .filter(|&i| a.decide("site", i, 0.5) != b.decide("site", i, 0.5))
            .count();
        assert!(disagreements > 50, "seeds should decorrelate decisions");
    }

    #[test]
    fn rates_are_roughly_honored() {
        let plan = FaultPlan::chaos(7);
        let hits = (0..10_000)
            .filter(|&i| plan.decide("rate-check", i, 0.2))
            .count();
        assert!(
            (1500..2500).contains(&hits),
            "expected ~2000 hits at rate 0.2, got {hits}"
        );
    }

    #[test]
    fn durability_preset_fires_every_store_fault_class() {
        let plan = FaultPlan::durability(5);
        assert!(!plan.is_empty());
        assert!((0..40).any(|k| plan.torn_write(k)));
        assert!((0..40).any(|k| plan.artifact_bitflip(k)));
        assert!((0..40).any(|k| plan.stale_lock(k)));
        // Clean plans never fire them.
        let none = FaultPlan::none(5);
        assert!((0..1000)
            .all(|k| !none.torn_write(k) && !none.artifact_bitflip(k) && !none.stale_lock(k)));
    }

    #[test]
    fn torn_write_and_bitflip_are_exclusive() {
        let plan = FaultPlan {
            seed: 9,
            torn_write_rate: 0.5,
            artifact_bitflip_rate: 0.5,
            ..FaultPlan::default()
        };
        for k in 0..300 {
            assert!(!(plan.torn_write(k) && plan.artifact_bitflip(k)));
        }
    }

    #[test]
    fn no_show_and_spammer_are_exclusive() {
        let plan = FaultPlan {
            seed: 3,
            crowd_no_show_rate: 0.5,
            crowd_spammer_rate: 0.5,
            ..FaultPlan::default()
        };
        for i in 0..200 {
            assert!(!(plan.crowd_no_show(i) && plan.crowd_spammer(i)));
        }
    }

    #[test]
    fn chaos_preset_fires_every_class() {
        let plan = FaultPlan::chaos(11);
        assert!((0..50).any(|i| plan.degenerate_pattern(i)));
        assert!((0..50).any(|i| plan.crowd_no_show(i)));
        assert!((0..50).any(|i| plan.crowd_spammer(i)));
        assert!((0..50).any(|i| plan.worker_panic(i)));
        assert!((0..500).any(|i| plan.poison_loss(i)));
        assert!((0..2000)
            .flat_map(|r| (0..8).map(move |c| (r, c)))
            .any(|(r, c)| !plan.corrupt_feature(r, c, 0.5).is_finite()));
        assert_eq!(plan.gan_fault_at(1), Some(GanFault::Diverge));
    }
}
