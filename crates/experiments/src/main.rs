//! Reproduction harness: one subcommand per table/figure of
//! "Inspector Gadget" (Heo et al., VLDB 2020).
//!
//! ```text
//! ig-experiments <experiment> [--scale tiny|quick|medium|paper|ooc]
//!                [--seed N] [--out DIR] [--no-memo] [--store DIR]
//!                [--resume] [--budget BYTES] [--health-exit]
//!
//! experiments: table1 table2 table3 table4 table5 table6
//!              fig9 fig10 fig11 combine chaos ooc all
//!              ("combine" is an extra ablation of the box-combination
//!              strategy from Section 3, not a numbered paper table;
//!              "chaos" is the fault-injection / recovery harness;
//!              "ooc" is the out-of-core streaming demo)
//! ```
//!
//! `--scale medium` (default) keeps the paper's class ratios at reduced
//! dataset sizes so a full `all` run finishes in CPU-minutes; `paper`
//! uses Table 1's exact N; `tiny` is the CI smoke alias of `quick`;
//! `ooc` streams the paper-scale datasets through the stage graph in
//! shards sized to a resident-set budget (default 256 MiB; `--budget`
//! overrides the budget at any scale, `0` = unbounded/monolithic).
//! Outputs go to stdout and `<out>/<exp>.{txt,json}`, plus a run-wide
//! `<out>/health.json` (fault summary + event log).
//!
//! Every run builds one [`ExpEnv`] whose [`ig_core::RunContext`] is
//! shared by all drivers it dispatches: datasets, prepared-image caches
//! and feature matrices memoize in the context's artifact store, so an
//! `all` run pyramids each image exactly once across experiments.
//! `--no-memo` disables the store (every stage recomputes) — the A/B for
//! benchmarking what memoization saves.
//!
//! `--store DIR` adds a crash-safe on-disk tier beneath the in-memory
//! store: durable stages (dataset generation, clean feature matrices)
//! persist as checksummed artifacts, so a rerun pointed at the same
//! directory warm-starts from whatever a killed sweep already computed.
//! Because every stage is a pure function of its key, the resumed run's
//! result files are byte-identical to an uninterrupted one. `--resume`
//! is the shorthand that defaults the store to `<out>/store`.
//!
//! `--health-exit` turns the health summary into the exit code: 0 for a
//! clean run, 3 for completed-with-recovered-faults, 4 when any fault
//! had no recovery — so sweep schedulers can distinguish "trust it",
//! "trust it but inspect the log", and "rerun it" without parsing JSON.

mod ablation_combine;
mod chaos;
mod common;
mod fig10;
mod fig11;
mod fig9;
mod ooc;
mod table1;
mod table2;
mod table3;
mod table4;
mod table5;
mod table6;

use common::ExpEnv;
use ig_core::{HealthReport, RunContext, ScalePlan};
use ig_runtime::{Clock, DiskStore};
use std::sync::Arc;

struct Args {
    experiment: String,
    scale: ScalePlan,
    seed: u64,
    out: String,
    memoize: bool,
    store: Option<String>,
    resume: bool,
    health_exit: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment name")?;
    let mut scale = ScalePlan::medium();
    let mut seed = 42u64;
    let mut out = "results".to_string();
    let mut memoize = true;
    let mut store = None;
    let mut resume = false;
    let mut health_exit = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = ScalePlan::parse(&v)?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--out" => {
                out = args.next().ok_or("--out needs a value")?;
            }
            "--no-memo" => {
                memoize = false;
            }
            "--store" => {
                store = Some(args.next().ok_or("--store needs a value")?);
            }
            "--resume" => {
                resume = true;
            }
            "--budget" => {
                let v = args.next().ok_or("--budget needs a value (bytes)")?;
                let bytes = v.parse().map_err(|_| format!("bad budget {v}"))?;
                scale = scale.with_memory_budget(bytes);
            }
            "--health-exit" => {
                health_exit = true;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        experiment,
        scale,
        seed,
        out,
        memoize,
        store,
        resume,
        health_exit,
    })
}

/// Serialize the run-wide health report to `<out>/health.json`: the
/// machine-readable summary first, then the full event log. CI's crash
/// drill excludes this one file from its byte-compare — store hit/miss
/// recovery events legitimately differ between a cold run and a resumed
/// one, while every other result file must not.
fn write_health_json(out_dir: &str, health: &HealthReport) {
    #[derive(serde::Serialize)]
    struct HealthDoc {
        summary: ig_core::HealthSummary,
        events: Vec<ig_core::HealthEvent>,
    }
    let doc = HealthDoc {
        summary: health.summary(),
        events: health.events(),
    };
    if std::fs::create_dir_all(out_dir).is_err() {
        return;
    }
    if let Ok(json) = serde_json::to_string_pretty(&doc) {
        let _ = std::fs::write(std::path::Path::new(out_dir).join("health.json"), json);
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: ig-experiments <table1..table6|fig9|fig10|fig11|combine|chaos|ooc|all> \
                 [--scale tiny|quick|medium|paper|ooc] [--seed N] [--out DIR] [--no-memo] \
                 [--store DIR] [--resume] [--budget BYTES] [--health-exit]"
            );
            std::process::exit(2);
        }
    };
    // Wall-clock deadlines are a driver concern: the runtime only ever
    // sees this injected monotonic clock, never `Instant` itself.
    let origin = std::time::Instant::now();
    let mut ctx = RunContext::new(args.seed)
        .with_scale(args.scale)
        .with_memoization(args.memoize)
        .with_clock(Clock::new(move || origin.elapsed().as_millis() as u64));
    // `--resume` is `--store <out>/store`: both attach the durable tier,
    // and resuming is nothing more than rerunning over a store directory
    // that already holds a previous (possibly killed) run's artifacts.
    let store_dir = args
        .store
        .clone()
        .or_else(|| args.resume.then(|| format!("{}/store", args.out)));
    let mut disk = None;
    if let Some(dir) = &store_dir {
        match DiskStore::open(dir) {
            Ok(store) => {
                let store = Arc::new(store);
                ctx = ctx.with_disk(Arc::clone(&store));
                println!("[store: durable tier at {dir}]");
                disk = Some(store);
            }
            Err(e) => {
                eprintln!("error: cannot open durable store at {dir}: {e}");
                std::process::exit(2);
            }
        }
    }
    let env = ExpEnv {
        ctx,
        out: args.out.clone(),
    };
    let run = |name: &str| match name {
        "table1" => table1::run(&env),
        "table2" => table2::run(&env),
        "table3" => table3::run(&env),
        "table4" => table4::run(&env),
        "table5" => table5::run(&env),
        "table6" => table6::run(&env),
        "fig9" => fig9::run(&env),
        "combine" => ablation_combine::run(&env),
        "fig10" => fig10::run(&env),
        "fig11" => fig11::run(&env),
        "chaos" => chaos::run(&env),
        "ooc" => ooc::run(&env),
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    };
    if args.experiment == "all" {
        for name in [
            "table1", "table2", "table3", "table4", "table5", "table6", "fig9", "fig10", "fig11",
            "combine", "chaos",
        ] {
            let started = std::time::Instant::now();
            println!("\n===================== {name} =====================");
            run(name);
            println!("[{name} took {:.1}s]", started.elapsed().as_secs_f32());
        }
    } else {
        run(&args.experiment);
    }
    let store = env.ctx.store();
    println!(
        "[runtime: {} stage runs, artifact store {} entries, {} hits / {} misses]",
        env.ctx.stage_runs(),
        store.len(),
        store.hits(),
        store.misses()
    );
    if let Some(disk) = &disk {
        let s = disk.stats();
        println!(
            "[store: {} disk hits / {} misses, {} writes, {} quarantined, {} stale locks broken, \
             {} flight waits]",
            s.hits, s.misses, s.writes, s.quarantined, s.locks_broken, s.flight_waits
        );
    }
    let summary = env.ctx.health().summary();
    write_health_json(&env.out, env.ctx.health());
    println!(
        "[health: {} fault(s), {} recovered, {} unrecovered -> {}/health.json]",
        summary.total_faults, summary.recovered, summary.unrecovered, env.out
    );
    if args.health_exit {
        // 0 = clean, 3 = completed with every fault recovered, 4 = at
        // least one fault had no recovery action — "trust it", "inspect
        // the log", "rerun it".
        if summary.unrecovered > 0 {
            std::process::exit(4);
        }
        if summary.total_faults > 0 {
            std::process::exit(3);
        }
    }
}
