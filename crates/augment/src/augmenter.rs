//! The combined augmentation planner — the Table 4 ablation arms.
//!
//! "When using both methods, we simply combine the patterns from each
//! augmentation" (Section 6.4).

use crate::gan::{Rgan, RganConfig};
use crate::policy::{policy_augment, Policy, PolicyOp};
use ig_faults::{FaultPlan, HealthReport, RecoveryAction, Stage};
use ig_imaging::GrayImage;
use rand::Rng;

/// Which augmentation arm to run (Table 4 columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AugmentMethod {
    /// Crowd patterns only.
    None,
    /// Policy-based only.
    PolicyBased,
    /// GAN-based only.
    GanBased,
    /// Both, halves of the budget each.
    Both,
}

impl AugmentMethod {
    /// All arms in Table 4 column order.
    pub fn all() -> [AugmentMethod; 4] {
        [
            AugmentMethod::None,
            AugmentMethod::PolicyBased,
            AugmentMethod::GanBased,
            AugmentMethod::Both,
        ]
    }

    /// Display name matching the paper's Table 4 header.
    pub fn display_name(&self) -> &'static str {
        match self {
            AugmentMethod::None => "No Aug.",
            AugmentMethod::PolicyBased => "Policy Based",
            AugmentMethod::GanBased => "GAN Based",
            AugmentMethod::Both => "Using Both",
        }
    }
}

/// Produce `budget` augmented patterns with the chosen method and return
/// the original patterns extended with them. `policies` is the searched
/// combination (ignored for GAN-only); `gan_config` tunes the RGAN
/// (ignored for policy-only).
pub fn augment(
    patterns: &[GrayImage],
    method: AugmentMethod,
    budget: usize,
    policies: &[Policy],
    gan_config: &RganConfig,
    rng: &mut impl Rng,
) -> Vec<GrayImage> {
    augment_with_health(
        patterns,
        method,
        budget,
        policies,
        gan_config,
        rng,
        None,
        &HealthReport::new(),
    )
}

/// [`augment`] with health monitoring and optional fault injection. When
/// GAN training ends degenerate (no healthy epoch to roll back to), its
/// share of the budget is produced by policy augmentation instead and a
/// [`RecoveryAction::PolicyOnlyAugmentation`] event is recorded.
#[allow(clippy::too_many_arguments)]
pub fn augment_with_health(
    patterns: &[GrayImage],
    method: AugmentMethod,
    budget: usize,
    policies: &[Policy],
    gan_config: &RganConfig,
    rng: &mut impl Rng,
    plan: Option<&FaultPlan>,
    health: &HealthReport,
) -> Vec<GrayImage> {
    let mut out = patterns.to_vec();
    if patterns.is_empty() || budget == 0 {
        return out;
    }
    match method {
        AugmentMethod::None => {}
        AugmentMethod::PolicyBased => {
            out.extend(policy_augment(patterns, policies, budget, rng));
        }
        AugmentMethod::GanBased => {
            out.extend(gan_or_policy(
                patterns, budget, policies, gan_config, rng, plan, health,
            ));
        }
        AugmentMethod::Both => {
            let half = budget / 2;
            out.extend(policy_augment(patterns, policies, half, rng));
            out.extend(gan_or_policy(
                patterns,
                budget - half,
                policies,
                gan_config,
                rng,
                plan,
                health,
            ));
        }
    }
    out
}

/// Train the RGAN and sample `count` patterns; fall back to policy-based
/// augmentation when training is degenerate. If the caller supplied no
/// policies (GAN arms normally ignore them), a small default combination
/// keeps the budget honored.
fn gan_or_policy(
    patterns: &[GrayImage],
    count: usize,
    policies: &[Policy],
    gan_config: &RganConfig,
    rng: &mut impl Rng,
    plan: Option<&FaultPlan>,
    health: &HealthReport,
) -> Vec<GrayImage> {
    let gan = Rgan::train_with_health(patterns, gan_config, rng, plan, health);
    match gan.degenerate {
        None => gan.generate(count, rng),
        Some(kind) => {
            health.record(
                Stage::Augmentation,
                kind,
                RecoveryAction::PolicyOnlyAugmentation,
                format!("GAN unusable after {kind}; {count} samples from policy augmentation"),
            );
            let fallback = fallback_policies(policies);
            policy_augment(patterns, &fallback, count, rng)
        }
    }
}

fn fallback_policies(policies: &[Policy]) -> Vec<Policy> {
    if !policies.is_empty() {
        return policies.to_vec();
    }
    vec![
        Policy {
            op: PolicyOp::Rotate,
            magnitude: 10.0,
        },
        Policy {
            op: PolicyOp::Brightness,
            magnitude: 1.2,
        },
        Policy {
            op: PolicyOp::Noise,
            magnitude: 0.03,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyOp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn patterns() -> Vec<GrayImage> {
        (0..6)
            .map(|i| {
                let mut img = GrayImage::filled(10, 10, 0.7);
                img.fill_rect(2 + i % 3, 3, 3, 3, 0.2);
                img
            })
            .collect()
    }

    fn policies() -> Vec<Policy> {
        vec![
            Policy {
                op: PolicyOp::Rotate,
                magnitude: 12.0,
            },
            Policy {
                op: PolicyOp::Brightness,
                magnitude: 1.2,
            },
        ]
    }

    #[test]
    fn none_returns_originals() {
        let mut rng = StdRng::seed_from_u64(0);
        let p = patterns();
        let out = augment(
            &p,
            AugmentMethod::None,
            50,
            &policies(),
            &RganConfig::quick(),
            &mut rng,
        );
        assert_eq!(out.len(), p.len());
    }

    #[test]
    fn policy_arm_extends_by_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let p = patterns();
        let out = augment(
            &p,
            AugmentMethod::PolicyBased,
            20,
            &policies(),
            &RganConfig::quick(),
            &mut rng,
        );
        assert_eq!(out.len(), p.len() + 20);
    }

    #[test]
    fn gan_arm_extends_by_budget() {
        let mut rng = StdRng::seed_from_u64(2);
        let p = patterns();
        let out = augment(
            &p,
            AugmentMethod::GanBased,
            10,
            &policies(),
            &RganConfig::quick(),
            &mut rng,
        );
        assert_eq!(out.len(), p.len() + 10);
    }

    #[test]
    fn both_arm_splits_budget() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = patterns();
        let out = augment(
            &p,
            AugmentMethod::Both,
            11,
            &policies(),
            &RganConfig::quick(),
            &mut rng,
        );
        assert_eq!(out.len(), p.len() + 11);
    }

    #[test]
    fn empty_patterns_pass_through() {
        let mut rng = StdRng::seed_from_u64(4);
        let out = augment(
            &[],
            AugmentMethod::Both,
            10,
            &policies(),
            &RganConfig::quick(),
            &mut rng,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn degenerate_gan_falls_back_to_policy() {
        use ig_faults::{FaultPlan, GanFault, RecoveryAction};
        let mut rng = StdRng::seed_from_u64(5);
        let p = patterns();
        // Fault at epoch 0: no healthy snapshot ever exists.
        let plan = FaultPlan {
            gan_fault_epoch: Some(0),
            gan_fault: GanFault::Diverge,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let out = augment_with_health(
            &p,
            AugmentMethod::GanBased,
            10,
            &[],
            &RganConfig::quick(),
            &mut rng,
            Some(&plan),
            &health,
        );
        assert_eq!(out.len(), p.len() + 10, "budget still honored");
        assert_eq!(
            health.count_action(RecoveryAction::PolicyOnlyAugmentation),
            1
        );
    }

    #[test]
    fn display_names_match_table4() {
        assert_eq!(AugmentMethod::None.display_name(), "No Aug.");
        assert_eq!(AugmentMethod::Both.display_name(), "Using Both");
        assert_eq!(AugmentMethod::all().len(), 4);
    }
}
