//! H1: heap allocation inside hot loops.
//!
//! The NCC/pyramid kernels in `crates/imaging` and the feature-generation
//! loop in `crates/core::features` are the throughput floor of the whole
//! pipeline (ROADMAP: "fast as the hardware allows"). An allocation inside
//! a loop nested ≥ 2 deep there runs per pixel or per (image × template)
//! pair — exactly the regression class this rule pins. Depth counts
//! `for`/`while`/`loop` bodies plus closures passed to per-element iterator
//! adapters (`.map(|x| …)` inside a `for` is depth 2).
//!
//! The remedy is hoisting: allocate scratch buffers once outside the loop
//! nest and reuse them (see `gaussian_blur_with_kernel` in
//! `crates/imaging::filter` and its use by `Pyramid::build`).

use crate::ast::{walk_block, Expr, ExprKind};
use crate::context::{FileClass, FileContext};
use crate::report::Diagnostic;

/// Types whose associated constructors allocate.
const ALLOC_TYPES: &[&str] = &["Vec", "Box", "String", "VecDeque", "BTreeMap", "HashMap"];

/// Associated functions on those types that allocate.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from"];

/// Methods that allocate a fresh buffer from the receiver.
const ALLOC_METHODS: &[&str] = &[
    "to_vec",
    "clone",
    "to_owned",
    "to_string",
    "collect",
    "concat",
    "join",
];

/// Macros that allocate.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Loop nesting depth at which allocations start being flagged.
const HOT_DEPTH: u32 = 2;

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if !ctx.hot_loop || ctx.class != FileClass::Library {
        return;
    }

    let mut diag = |tok: usize, what: &str| {
        if let Some(t) = ctx.tokens.get(tok) {
            out.push(Diagnostic {
                rule: "hot-loop-alloc".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "{what} allocates inside a loop nested {HOT_DEPTH}+ deep on a \
                     hot path; hoist the buffer out of the loop nest and reuse it, \
                     or annotate with `ig-lint: allow(hot-loop-alloc) -- <why the \
                     allocation is amortized>`"
                ),
            });
        }
    };

    for f in &ctx.ast.fns {
        if !ctx.governed(f.name_tok) {
            continue;
        }
        walk_block(&f.body, &mut |e: &Expr| {
            if e.depth < HOT_DEPTH {
                return;
            }
            match &e.kind {
                ExprKind::Call { callee, .. } => {
                    if let ExprKind::Path(segs) = &callee.kind {
                        let ty_allocs = segs
                            .len()
                            .checked_sub(2)
                            .and_then(|i| segs.get(i))
                            .is_some_and(|ty| ALLOC_TYPES.contains(&ty.as_str()));
                        let ctor = segs
                            .last()
                            .is_some_and(|c| ALLOC_CTORS.contains(&c.as_str()));
                        if ty_allocs && ctor && ctx.governed(callee.span.lo) {
                            diag(callee.span.lo, &format!("`{}`", segs.join("::")));
                        }
                    }
                }
                ExprKind::MethodCall {
                    method, method_tok, ..
                } if ALLOC_METHODS.contains(&method.as_str()) && ctx.governed(*method_tok) => {
                    diag(*method_tok, &format!("`.{method}()`"));
                }
                ExprKind::Macro { name, name_tok, .. }
                    if ALLOC_MACROS.contains(&name.as_str()) && ctx.governed(*name_tok) =>
                {
                    diag(*name_tok, &format!("`{name}!`"));
                }
                _ => {}
            }
        });
    }
}
