//! P1: panic paths in library code.
//!
//! A panic inside the pipeline tears down the worker that the ig-faults
//! recovery ladders are supposed to catch and reroute; library crates must
//! surface failure as `Result` and leave aborting to binaries. Flags
//! `.unwrap()`, `.expect(…)`, the panicking macro family, and slice
//! indexing by integer literal (`row[0]` on a possibly-empty slice), all
//! outside `#[cfg(test)]`.

use crate::context::{FileClass, FileContext};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

pub fn check(ctx: &FileContext, out: &mut Vec<Diagnostic>) {
    if ctx.class != FileClass::Library {
        return;
    }
    let toks = ctx.tokens;
    for (i, t) in toks.iter().enumerate() {
        if !ctx.governed(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let prev_is_dot = i >= 1 && toks[i - 1].is_punct(".");
        let next_is_paren = toks.get(i + 1).is_some_and(|t| t.is_punct("("));

        if prev_is_dot && next_is_paren && (t.text == "unwrap" || t.text == "expect") {
            out.push(Diagnostic {
                rule: "panic".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`.{}()` can panic in library code; propagate with `?` / \
                     `ok_or` or annotate with `ig-lint: allow(panic) -- <proof it \
                     cannot fail>`",
                    t.text
                ),
            });
        }

        if PANIC_MACROS.contains(&t.text.as_str())
            && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
        {
            out.push(Diagnostic {
                rule: "panic".to_string(),
                path: ctx.path.to_string(),
                line: t.line,
                col: t.col,
                message: format!(
                    "`{}!` aborts the worker instead of returning an error the \
                     recovery ladder can catch",
                    t.text
                ),
            });
        }

        // `name[<int literal>]` — e.g. `row[0]` panics on an empty slice.
        if toks.get(i + 1).is_some_and(|t| t.is_punct("["))
            && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Int)
            && toks.get(i + 3).is_some_and(|t| t.is_punct("]"))
        {
            // Skip attribute-ish or declaration positions: require the name
            // to be used as an expression (preceded by nothing shaped like
            // `fn`/`let`/`:`… is hard to prove; instead require the indexed
            // name not be immediately preceded by `fn` or `struct`).
            let declish = i >= 1 && (toks[i - 1].is_ident("fn") || toks[i - 1].is_ident("struct"));
            if !declish {
                let idx = &toks[i + 2];
                out.push(Diagnostic {
                    rule: "panic".to_string(),
                    path: ctx.path.to_string(),
                    line: idx.line,
                    col: idx.col,
                    message: format!(
                        "indexing `{}[{}]` panics when the slice is shorter; use \
                         `.get({})` or prove the length with an annotation",
                        t.text, idx.text, idx.text
                    ),
                });
            }
        }
    }
}
