//! Ablation bench: fitting the weak-label MLP with L-BFGS (the paper's
//! optimizer) vs Adam, plus the cost of a full tuning sweep.

use criterion::{criterion_group, criterion_main, Criterion};
use ig_core::labeler::{Labeler, LabelerConfig};
use ig_core::tuning::{tune_labeler, TuningConfig};
use ig_nn::lbfgs::LbfgsConfig;
use ig_nn::mlp::{Loss, Mlp, MlpConfig, Targets};
use ig_nn::{Adam, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dev_set(n: usize, d: usize, seed: u64) -> (Matrix, Vec<usize>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let y = i % 2;
        let mut row: Vec<f32> = (0..d).map(|_| rng.gen_range(0.8..0.9)).collect();
        if y == 1 {
            row[0] = rng.gen_range(0.92..1.0);
            row[d / 2] = rng.gen_range(0.9..0.98);
        }
        rows.push(row);
        labels.push(y);
    }
    (Matrix::from_rows(&rows), labels)
}

fn bench_lbfgs_vs_adam(c: &mut Criterion) {
    let (x, y) = dev_set(120, 32, 1);
    let mut group = c.benchmark_group("labeler_fit");
    group.bench_function("lbfgs", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut labeler = Labeler::new(
                32,
                LabelerConfig {
                    hidden: vec![8],
                    num_classes: 2,
                    l2: 1e-3,
                    lbfgs: LbfgsConfig {
                        max_iters: 80,
                        ..Default::default()
                    },
                },
                &mut rng,
            )
            .unwrap();
            labeler.fit(&x, &y).unwrap()
        })
    });
    group.bench_function("adam", |b| {
        let targets = Matrix::from_vec(y.len(), 1, y.iter().map(|&v| v as f32).collect());
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            let mut mlp = Mlp::new(&MlpConfig::new(32, vec![8], 1), &mut rng).unwrap();
            let mut opt = Adam::new(0.01);
            let mut params = mlp.params();
            for _ in 0..80 {
                mlp.set_params(&params);
                let (_, grad) = mlp
                    .loss_and_grad(&x, &Targets::Binary(&targets), Loss::Bce)
                    .unwrap();
                opt.step(&mut params, &grad);
            }
            mlp.set_params(&params);
            mlp.loss(&x, &Targets::Binary(&targets), Loss::Bce).unwrap()
        })
    });
    group.finish();
}

fn bench_tuning_sweep(c: &mut Criterion) {
    let (x, y) = dev_set(80, 16, 3);
    c.bench_function("labeler_tuning_sweep", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(4);
            let config = TuningConfig {
                max_hidden_layers: 2,
                lbfgs: LbfgsConfig {
                    max_iters: 30,
                    ..Default::default()
                },
                ..Default::default()
            };
            tune_labeler(&x, &y, 2, &config, &mut rng)
                .unwrap()
                .1
                .best_cv_f1
        })
    });
}

criterion_group!(benches, bench_lbfgs_vs_adam, bench_tuning_sweep);
criterion_main!(benches);
