//! Normalized cross-correlation (NCC) template matching.
//!
//! This is the feature generation primitive of Inspector Gadget: each
//! pattern `P_i` defines an FGF
//!
//! ```text
//! f_i(I) = max_{x,y}  sum_{x',y'} P_i(x',y') I(x+x', y+y')
//!                     -------------------------------------------------
//!                     sqrt( sum P_i(x',y')^2  *  sum I(x+x', y+y')^2 )
//! ```
//!
//! (Section 5.1, OpenCV's `TM_CCORR_NORMED`). The default matcher here is
//! the **zero-mean** variant of that formula (OpenCV's `TM_CCOEFF_NORMED`
//! from the same cited page): pattern and window are mean-centred before
//! correlating, i.e. a Pearson correlation over the window. On bright,
//! low-contrast industrial surfaces the plain form saturates near 1.0 for
//! *every* placement and *anti*-correlates with dark defects, destroying
//! the feature signal; mean-centring matches defects of either polarity.
//! The plain form is kept as [`match_template_ccorr`] for the ablation
//! bench. Scores are in `[-1, 1]`; degenerate (flat) windows or patterns
//! score 0.
//!
//! Two search strategies are provided: an exact brute-force scan whose
//! denominator is accelerated with integral images, and the paper's
//! coarse-to-fine pyramid search that localizes candidates at low
//! resolution and rescores only small neighbourhoods at full resolution.

use crate::integral::IntegralImage;
use crate::pyramid::Pyramid;
use crate::resize::resize_bilinear;
use crate::{GrayImage, ImagingError, Result};

/// The best-match location and its NCC score in `[-1, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MatchResult {
    /// Left edge of the best-matching window.
    pub x: usize,
    /// Top edge of the best-matching window.
    pub y: usize,
    /// NCC score at `(x, y)`.
    pub score: f32,
}

/// Tuning for the coarse-to-fine pyramid matcher.
#[derive(Debug, Clone, Copy)]
pub struct PyramidMatchConfig {
    /// Maximum number of pyramid levels (including full resolution).
    pub max_levels: usize,
    /// Stop adding levels when the *pattern* would shrink below this side
    /// length — below ~4 px correlations carry no signal.
    pub min_pattern_side: usize,
    /// Number of coarse candidates to refine at finer levels.
    pub top_k: usize,
    /// Neighbourhood radius (in pixels of the finer level) searched around
    /// each upscaled candidate during refinement.
    pub refine_radius: usize,
}

impl Default for PyramidMatchConfig {
    fn default() -> Self {
        Self {
            max_levels: 4,
            min_pattern_side: 4,
            top_k: 3,
            refine_radius: 3,
        }
    }
}

pub(crate) fn validate(image: &GrayImage, pattern: &GrayImage) -> Result<()> {
    if image.is_empty() || pattern.is_empty() {
        return Err(ImagingError::EmptyImage);
    }
    if pattern.width() > image.width() || pattern.height() > image.height() {
        return Err(ImagingError::TemplateTooLarge {
            template: pattern.dims(),
            image: image.dims(),
        });
    }
    Ok(())
}

/// A pattern preprocessed for Pearson matching: mean-centred pixels and
/// their L2 norm.
#[derive(Debug, Clone)]
pub(crate) struct CenteredPattern {
    pub(crate) centered: GrayImage,
    pub(crate) norm: f64,
    pub(crate) w: usize,
    pub(crate) h: usize,
    /// Flat pattern: per-pixel deviation below the shared cutoff, every
    /// score is pinned to 0.0. Hoisted out of the per-placement path.
    pub(crate) degenerate: bool,
}

impl CenteredPattern {
    pub(crate) fn new(pattern: &GrayImage) -> Self {
        let n = pattern.len().max(1) as f64;
        // Accumulate the mean in f64: an f32 sum over a large (e.g.
        // GAN-sized 256x256) pattern loses enough low bits to shift the
        // centring, which the norm then bakes into every score.
        let mean = (pattern.pixels().iter().map(|&p| p as f64).sum::<f64>() / n) as f32;
        let centered = pattern.map(|p| p - mean);
        let norm = centered
            .pixels()
            .iter()
            .map(|&p| (p as f64) * (p as f64))
            .sum::<f64>()
            .sqrt();
        let area = (pattern.width() * pattern.height()) as f64;
        let degenerate = norm <= FLAT_PATTERN_TOL * area.sqrt();
        Self {
            centered,
            norm,
            w: pattern.width(),
            h: pattern.height(),
            degenerate,
        }
    }
}

/// Tolerances sized for [0, 1] imagery: a "flat" pattern or window whose
/// per-pixel deviation is below ~1e-4 carries only float noise. Shared by
/// the scalar path, the row sweep, and the FFT path so the three kernels
/// cannot drift on the cutoff.
pub(crate) const FLAT_WINDOW_TOL: f64 = 1e-8;
/// See [`FLAT_WINDOW_TOL`]; this one gates the pattern's L2 norm.
pub(crate) const FLAT_PATTERN_TOL: f64 = 1e-4;

/// The NCC denominator's window term `sum W² - n·mean(W)²` from raw window
/// moments, or `None` for a degenerate (flat) window. This is the single
/// home of the flat-window cutoff — every kernel path scores a degenerate
/// window as 0.0 by observing `None` here.
#[inline]
pub(crate) fn variance_term(win_sum: f64, win_sq: f64, n: f64) -> Option<f64> {
    let term = win_sq - win_sum * win_sum / n;
    (term > FLAT_WINDOW_TOL * n).then_some(term)
}

/// [`variance_term`] for the window at `(x, y)` of extent `(w, h)`, read
/// from the precomputed integral tables.
#[inline]
pub(crate) fn window_variance_term(
    sums: &ImageSums,
    x: usize,
    y: usize,
    w: usize,
    h: usize,
) -> Option<f64> {
    let n = (w * h) as f64;
    variance_term(
        sums.values.window_sum(x, y, w, h),
        sums.squares.window_sum(x, y, w, h),
        n,
    )
}

/// Dot product of a pattern row against an image-row slice, written as
/// exact-chunked iteration (8 explicit f32 lanes over `chunks_exact(8)`,
/// merged in a fixed order, sequential tail) so LLVM autovectorizes it
/// without `unsafe` or target features. Deterministic: the accumulation
/// order depends only on the slice length, so every caller — the scalar
/// [`pearson_at`], the row sweep, and the refine path — produces identical
/// bits for identical inputs.
#[inline]
pub(crate) fn dot_rows(pat: &[f32], img: &[f32]) -> f32 {
    let len = pat.len().min(img.len());
    let (pat, img) = (&pat[..len], &img[..len]);
    let mut lanes = [0.0f32; 8];
    for (pc, ic) in pat.chunks_exact(8).zip(img.chunks_exact(8)) {
        for ((lane, p), i) in lanes.iter_mut().zip(pc).zip(ic) {
            *lane += *p * *i;
        }
    }
    let [l0, l1, l2, l3, l4, l5, l6, l7] = lanes;
    let mut acc = ((l0 + l4) + (l1 + l5)) + ((l2 + l6) + (l3 + l7));
    let tail = pat.chunks_exact(8).remainder();
    let itail = img.chunks_exact(8).remainder();
    for (p, i) in tail.iter().zip(itail) {
        acc += *p * *i;
    }
    acc
}

/// One-pass dense Pearson sweep over every valid placement, in row-major
/// order (`y` outer ascending, `x` inner ascending — the scan order every
/// dense caller used before this path existed).
///
/// Instead of calling [`pearson_at`] per placement, each output row reads
/// its window sum/square terms from the integral tables in one batched
/// pass ([`IntegralImage::row_window_sums`]) and computes the numerator as
/// a flat-slice dot product over contiguous rows with an f64 row
/// accumulator. Both steps preserve the per-placement summation order, so
/// emitted scores are **bit-identical** to [`pearson_at`] (pinned by the
/// `row_sweep_bit_identical_to_pearson_at` tests).
pub(crate) fn ncc_row_sweep(
    image: &GrayImage,
    pattern: &CenteredPattern,
    sums: &ImageSums,
    mut emit: impl FnMut(usize, usize, f32),
) {
    let (pw, ph) = (pattern.w, pattern.h);
    let (iw, ih) = image.dims();
    if pw == 0 || ph == 0 || pw > iw || ph > ih {
        return;
    }
    let out_w = iw - pw + 1;
    let out_h = ih - ph + 1;
    if pattern.degenerate {
        for y in 0..out_h {
            for x in 0..out_w {
                emit(x, y, 0.0);
            }
        }
        return;
    }
    let n = (pw * ph) as f64;
    // Row scratch, hoisted out of the scan (H1): one window-sum and one
    // window-square slot per output column, refilled per output row.
    let mut win_sums = vec![0.0f64; out_w];
    let mut win_sqs = vec![0.0f64; out_w];
    for y in 0..out_h {
        sums.values.row_window_sums(y, pw, ph, &mut win_sums);
        sums.squares.row_window_sums(y, pw, ph, &mut win_sqs);
        if pw < 8 {
            sweep_row_blocked(image, pattern, y, out_w, n, &win_sums, &win_sqs, &mut emit);
            continue;
        }
        for (x, (ws, wq)) in win_sums.iter().zip(&win_sqs).enumerate() {
            let score = match variance_term(*ws, *wq, n) {
                None => 0.0,
                Some(term) => {
                    let mut num = 0.0f64;
                    for dy in 0..ph {
                        let prow = pattern.centered.row(dy);
                        let irow = &image.row(y + dy)[x..x + pw];
                        num += dot_rows(prow, irow) as f64;
                    }
                    let score = num / (pattern.norm * term.sqrt());
                    score.clamp(-1.0, 1.0) as f32
                }
            };
            emit(x, y, score);
        }
    }
}

/// One output row of the sweep for narrow patterns (`pw < 8`), register-
/// blocked: `BLOCK` adjacent placements advance together, sharing every
/// image-row load and giving the CPU eight independent accumulator chains
/// instead of one serial f32 chain per placement (the coarse pyramid scan
/// runs 5–6 px patterns, where [`dot_rows`]' lane trick has no body to
/// chew on). For `pw < 8` that helper is a plain sequential loop, and the
/// blocked form keeps each placement's accumulation order exactly —
/// sequential in-row f32, rows merged into f64 in row-major order — so
/// emitted scores stay bit-identical to [`pearson_at`].
#[allow(clippy::too_many_arguments)]
fn sweep_row_blocked(
    image: &GrayImage,
    pattern: &CenteredPattern,
    y: usize,
    out_w: usize,
    n: f64,
    win_sums: &[f64],
    win_sqs: &[f64],
    emit: &mut impl FnMut(usize, usize, f32),
) {
    const BLOCK: usize = 8;
    let (pw, ph) = (pattern.w, pattern.h);
    let mut x = 0;
    // Full blocks: eight placements with their own scalar f32 chains.
    while x + BLOCK <= out_w {
        let mut nums = [0.0f64; BLOCK];
        for dy in 0..ph {
            let prow = pattern.centered.row(dy);
            // One slice covers all eight windows of this pattern row;
            // `windows(BLOCK)` yields exactly `pw` eight-wide views.
            let irow = &image.row(y + dy)[x..x + pw + BLOCK - 1];
            let (mut r0, mut r1, mut r2, mut r3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            let (mut r4, mut r5, mut r6, mut r7) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for (p, win) in prow.iter().zip(irow.windows(BLOCK)) {
                let &[w0, w1, w2, w3, w4, w5, w6, w7] = win else {
                    continue;
                };
                r0 += *p * w0;
                r1 += *p * w1;
                r2 += *p * w2;
                r3 += *p * w3;
                r4 += *p * w4;
                r5 += *p * w5;
                r6 += *p * w6;
                r7 += *p * w7;
            }
            for (num, row) in nums.iter_mut().zip([r0, r1, r2, r3, r4, r5, r6, r7]) {
                *num += row as f64;
            }
        }
        for (j, num) in nums.iter().enumerate() {
            let score = match variance_term(win_sums[x + j], win_sqs[x + j], n) {
                None => 0.0,
                Some(term) => (num / (pattern.norm * term.sqrt())).clamp(-1.0, 1.0) as f32,
            };
            emit(x + j, y, score);
        }
        x += BLOCK;
    }
    // Tail placements, one at a time (same order as the narrow dot).
    while x < out_w {
        let score = match variance_term(win_sums[x], win_sqs[x], n) {
            None => 0.0,
            Some(term) => {
                let mut num = 0.0f64;
                for dy in 0..ph {
                    let prow = pattern.centered.row(dy);
                    let irow = &image.row(y + dy)[x..x + pw];
                    let mut row = 0.0f32;
                    for (p, i) in prow.iter().zip(irow) {
                        row += *p * *i;
                    }
                    num += row as f64;
                }
                (num / (pattern.norm * term.sqrt())).clamp(-1.0, 1.0) as f32
            }
        };
        emit(x, y, score);
        x += 1;
    }
}

/// Precomputed integrals of the search image.
#[derive(Debug, Clone)]
pub(crate) struct ImageSums {
    values: IntegralImage,
    squares: IntegralImage,
}

impl ImageSums {
    /// Approximate heap footprint of both accumulator tables, in bytes.
    pub(crate) fn approx_bytes(&self) -> usize {
        self.values.approx_bytes() + self.squares.approx_bytes()
    }

    pub(crate) fn new(image: &GrayImage) -> Self {
        Self {
            values: IntegralImage::of_values(image),
            squares: IntegralImage::of_squares(image),
        }
    }
}

/// Pearson NCC at one placement.
///
/// With `Pc = P - mean(P)`:
/// `score = dot(Pc, W) / (||Pc|| * sqrt(sum W² - n·mean(W)²))`,
/// using `sum(Pc · W) = sum((P - µP)(W - µW))` since `sum(Pc) = 0`.
pub(crate) fn pearson_at(
    image: &GrayImage,
    pattern: &CenteredPattern,
    x: usize,
    y: usize,
    sums: &ImageSums,
) -> f32 {
    let (pw, ph) = (pattern.w, pattern.h);
    if pattern.degenerate {
        return 0.0;
    }
    let Some(win_var_term) = window_variance_term(sums, x, y, pw, ph) else {
        return 0.0;
    };
    let mut num = 0.0f64;
    for dy in 0..ph {
        let prow = pattern.centered.row(dy);
        let irow = &image.row(y + dy)[x..x + pw];
        num += dot_rows(prow, irow) as f64;
    }
    let score = num / (pattern.norm * win_var_term.sqrt());
    score.clamp(-1.0, 1.0) as f32
}

/// Exact brute-force Pearson-NCC match over every valid placement, driven
/// by the one-pass [`ncc_row_sweep`] (same scan order and comparison as
/// the historical per-placement loop).
pub fn match_template(image: &GrayImage, pattern: &GrayImage) -> Result<MatchResult> {
    validate(image, pattern)?;
    let prepared = CenteredPattern::new(pattern);
    let sums = ImageSums::new(image);
    let mut best = MatchResult {
        x: 0,
        y: 0,
        score: f32::NEG_INFINITY,
    };
    ncc_row_sweep(image, &prepared, &sums, |x, y, s| {
        if s > best.score {
            best = MatchResult { x, y, score: s };
        }
    });
    Ok(best)
}

/// Exact brute-force match with the paper's *plain* `TM_CCORR_NORMED`
/// formula (no mean-centring). Kept for the matching-mode ablation.
pub fn match_template_ccorr(image: &GrayImage, pattern: &GrayImage) -> Result<MatchResult> {
    validate(image, pattern)?;
    let sq = IntegralImage::of_squares(image);
    let pat_energy: f64 = pattern
        .pixels()
        .iter()
        .map(|&p| (p as f64) * (p as f64))
        .sum();
    let (pw, ph) = pattern.dims();
    let mut best = MatchResult {
        x: 0,
        y: 0,
        score: f32::NEG_INFINITY,
    };
    for y in 0..=(image.height() - ph) {
        for x in 0..=(image.width() - pw) {
            let window_energy = sq.window_sum(x, y, pw, ph);
            let denom = (pat_energy * window_energy).sqrt();
            let score = if denom <= f64::EPSILON {
                0.0
            } else {
                let mut num = 0.0f64;
                for dy in 0..ph {
                    let prow = pattern.row(dy);
                    let irow = &image.row(y + dy)[x..x + pw];
                    num += dot_rows(prow, irow) as f64;
                }
                (num / denom) as f32
            };
            if score > best.score {
                best = MatchResult { x, y, score };
            }
        }
    }
    Ok(best)
}

/// Dense Pearson-NCC score map: output pixel `(x, y)` is the score of the
/// window whose top-left corner is `(x, y)`. Output size is
/// `(W - w + 1) x (H - h + 1)`.
pub fn score_map(image: &GrayImage, pattern: &GrayImage) -> Result<GrayImage> {
    validate(image, pattern)?;
    let prepared = CenteredPattern::new(pattern);
    let sums = ImageSums::new(image);
    let out_w = image.width() - prepared.w + 1;
    let out_h = image.height() - prepared.h + 1;
    let mut out = GrayImage::new(out_w, out_h);
    ncc_row_sweep(image, &prepared, &sums, |x, y, s| out.set(x, y, s));
    Ok(out)
}

/// Coarse-to-fine pyramid Pearson-NCC match (Section 5.1's "pyramid
/// method").
///
/// Both image and pattern are reduced together; an exhaustive scan runs
/// only at the coarsest level, after which the `top_k` candidate locations
/// are propagated down, each rescored in a `±refine_radius` neighbourhood
/// at every finer level. Falls back to the exact matcher when the pattern
/// is too small to survive even one reduction.
pub fn match_template_pyramid(
    image: &GrayImage,
    pattern: &GrayImage,
    config: &PyramidMatchConfig,
) -> Result<MatchResult> {
    validate(image, pattern)?;
    let levels = levels_for_pattern(pattern.width().min(pattern.height()), config);
    if levels == 1 {
        return match_template(image, pattern);
    }

    let image_pyr = Pyramid::build(image, levels, 2);
    let levels = levels.min(image_pyr.num_levels());
    if levels == 1 {
        return match_template(image, pattern);
    }

    // Reduced patterns per level (level 0 = original).
    let mut patterns: Vec<GrayImage> = Vec::with_capacity(levels);
    patterns.push(pattern.clone());
    for lvl in 1..levels {
        let scale = 1usize << lvl;
        let pw = (pattern.width() / scale).max(1);
        let ph = (pattern.height() / scale).max(1);
        patterns.push(resize_bilinear(pattern, pw, ph)?);
    }

    // Exhaustive scan at the coarsest level, keeping top-k candidates.
    let coarse = levels - 1;
    let coarse_img = image_pyr.level(coarse);
    let coarse_pat = &patterns[coarse];
    if coarse_pat.width() > coarse_img.width() || coarse_pat.height() > coarse_img.height() {
        return match_template(image, pattern);
    }
    let prepared = CenteredPattern::new(coarse_pat);
    let sums = ImageSums::new(coarse_img);
    let mut candidates: Vec<MatchResult> = Vec::new();
    ncc_row_sweep(coarse_img, &prepared, &sums, |x, y, s| {
        insert_topk(
            &mut candidates,
            MatchResult { x, y, score: s },
            config.top_k,
        );
    });

    // Refine candidates through finer levels.
    for lvl in (0..coarse).rev() {
        let img = image_pyr.level(lvl);
        let pat = &patterns[lvl];
        if pat.width() > img.width() || pat.height() > img.height() {
            continue;
        }
        let prepared = CenteredPattern::new(pat);
        let sums = ImageSums::new(img);
        let max_x = img.width() - pat.width();
        let max_y = img.height() - pat.height();
        let mut refined: Vec<MatchResult> = Vec::with_capacity(candidates.len());
        for cand in &candidates {
            // A coarse coordinate c maps to [2c - r, 2c + r] one level down.
            let cx = cand.x * 2;
            let cy = cand.y * 2;
            let x0 = cx.saturating_sub(config.refine_radius).min(max_x);
            let y0 = cy.saturating_sub(config.refine_radius).min(max_y);
            let x1 = (cx + config.refine_radius).min(max_x);
            let y1 = (cy + config.refine_radius).min(max_y);
            let mut best = MatchResult {
                x: x0,
                y: y0,
                score: f32::NEG_INFINITY,
            };
            for y in y0..=y1 {
                for x in x0..=x1 {
                    let s = pearson_at(img, &prepared, x, y, &sums);
                    if s > best.score {
                        best = MatchResult { x, y, score: s };
                    }
                }
            }
            refined.push(best);
        }
        candidates = refined;
    }

    candidates
        .into_iter()
        .max_by(|a, b| a.score.total_cmp(&b.score))
        .ok_or(ImagingError::EmptyImage)
}

/// Number of pyramid levels the coarse-to-fine search uses for a pattern
/// whose shorter side is `min_pat` — how many times it can halve before
/// dropping below `config.min_pattern_side`, capped at `config.max_levels`.
/// Shared with [`crate::prepared::PreparedPattern`] so the prepared and
/// per-call paths derive identical level stacks.
pub(crate) fn levels_for_pattern(min_pat: usize, config: &PyramidMatchConfig) -> usize {
    let mut levels = 1usize;
    let mut side = min_pat;
    while levels < config.max_levels && side / 2 >= config.min_pattern_side {
        side /= 2;
        levels += 1;
    }
    levels
}

/// Keep the top-`k` results, sorted descending by score. Runs once per
/// coarse placement, so insertion is a binary search + `Vec::insert` into
/// the (short, already-sorted) list instead of the old push-then-full-sort.
/// Ordering semantics are unchanged: ties keep insertion order (the stable
/// sort's behavior), and a full list is only disturbed by a strictly
/// greater score (same `>` comparison as before).
pub(crate) fn insert_topk(heap: &mut Vec<MatchResult>, item: MatchResult, k: usize) {
    if k == 0 {
        return;
    }
    if heap.len() >= k {
        let Some(last) = heap.last() else { return };
        if item.score > last.score {
            heap.pop();
        } else {
            return;
        }
    }
    // Descending order: the insertion point is after every entry scoring
    // >= the new item, which is exactly where the stable sort placed it.
    let pos = heap.partition_point(|m| m.score.total_cmp(&item.score) != std::cmp::Ordering::Less);
    heap.insert(pos, item);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A structured test image: smooth gradient background with a bright
    /// blob pasted at a known location.
    fn image_with_blob(w: usize, h: usize, bx: usize, by: usize) -> (GrayImage, GrayImage) {
        let mut img = GrayImage::from_fn(w, h, |x, y| 0.2 + 0.001 * (x + y) as f32);
        let blob = GrayImage::from_fn(8, 8, |x, y| {
            let dx = x as f32 - 3.5;
            let dy = y as f32 - 3.5;
            0.2 + 0.8 * (-(dx * dx + dy * dy) / 8.0).exp()
        });
        img.paste(&blob, bx, by).unwrap();
        (img, blob)
    }

    #[test]
    fn exact_match_finds_planted_pattern() {
        let (img, blob) = image_with_blob(64, 48, 23, 17);
        let m = match_template(&img, &blob).unwrap();
        assert_eq!((m.x, m.y), (23, 17));
        assert!(m.score > 0.999, "score {}", m.score);
    }

    #[test]
    fn self_match_score_is_one() {
        let img = GrayImage::from_fn(12, 12, |x, y| 0.1 + ((x * y) % 7) as f32 * 0.1);
        let m = match_template(&img, &img).unwrap();
        assert_eq!((m.x, m.y), (0, 0));
        assert!((m.score - 1.0).abs() < 1e-5);
    }

    #[test]
    fn matching_is_gain_and_offset_invariant() {
        // Pearson NCC is invariant to affine intensity changes of the
        // pattern: a * P + b matches where P matches.
        let (img, blob) = image_with_blob(40, 40, 10, 10);
        let transformed = blob.map(|p| 2.5 * p + 0.3);
        let m = match_template(&img, &transformed).unwrap();
        assert_eq!((m.x, m.y), (10, 10));
        assert!(m.score > 0.999);
    }

    #[test]
    fn dark_defect_on_bright_background_matches() {
        // The regression the Pearson form exists for: a dark line defect
        // on a bright surface must produce its maximum at the defect.
        let mut img = GrayImage::filled(60, 30, 0.8);
        img.draw_line(30.0, 5.0, 40.0, 25.0, 1.5, 0.2);
        let mut pat = GrayImage::filled(14, 24, 0.8);
        pat.draw_line(2.0, 2.0, 12.0, 22.0, 1.5, 0.2);
        let m = match_template(&img, &pat).unwrap();
        assert!(m.score > 0.5, "dark defect score {}", m.score);
        // The match is near the planted defect (x ≈ 28, y ≈ 3).
        assert!((m.x as isize - 28).abs() <= 4, "x = {}", m.x);
    }

    #[test]
    fn anticorrelated_pattern_scores_negative() {
        let img = GrayImage::from_fn(16, 16, |x, _| (x % 2) as f32);
        let inverted = img.map(|p| 1.0 - p);
        let map = score_map(&img, &inverted).unwrap();
        assert!(map.get(0, 0) < -0.9, "inverted score {}", map.get(0, 0));
    }

    #[test]
    fn template_too_large_errors() {
        let img = GrayImage::filled(4, 4, 1.0);
        let pat = GrayImage::filled(5, 2, 1.0);
        assert!(matches!(
            match_template(&img, &pat),
            Err(ImagingError::TemplateTooLarge { .. })
        ));
    }

    #[test]
    fn empty_inputs_error() {
        let img = GrayImage::new(0, 0);
        let pat = GrayImage::filled(2, 2, 1.0);
        assert!(match_template(&img, &pat).is_err());
        let img2 = GrayImage::filled(4, 4, 1.0);
        let pat2 = GrayImage::new(0, 0);
        assert!(match_template(&img2, &pat2).is_err());
    }

    #[test]
    fn flat_image_yields_zero_score() {
        let img = GrayImage::filled(10, 10, 0.5);
        let mut pat = GrayImage::filled(3, 3, 0.2);
        pat.set(1, 1, 0.9);
        let m = match_template(&img, &pat).unwrap();
        assert_eq!(m.score, 0.0);
    }

    #[test]
    fn flat_pattern_yields_zero_score() {
        let img = GrayImage::from_fn(10, 10, |x, y| (x + y) as f32 * 0.05);
        let pat = GrayImage::filled(3, 3, 0.7);
        let m = match_template(&img, &pat).unwrap();
        assert_eq!(m.score, 0.0);
    }

    #[test]
    fn ccorr_variant_still_available() {
        let (img, blob) = image_with_blob(48, 48, 20, 12);
        let m = match_template_ccorr(&img, &blob).unwrap();
        // Plain CCORR also finds a bright blob on a dark background.
        assert_eq!((m.x, m.y), (20, 12));
        assert!(m.score > 0.99);
    }

    #[test]
    fn score_map_dimensions() {
        let img = GrayImage::filled(10, 8, 0.5);
        let pat = GrayImage::filled(3, 2, 0.5);
        let map = score_map(&img, &pat).unwrap();
        assert_eq!(map.dims(), (8, 7));
    }

    #[test]
    fn score_map_peak_at_planted_location() {
        let (img, blob) = image_with_blob(32, 32, 5, 9);
        let map = score_map(&img, &blob).unwrap();
        let mut best = (0usize, 0usize, f32::NEG_INFINITY);
        for y in 0..map.height() {
            for x in 0..map.width() {
                if map.get(x, y) > best.2 {
                    best = (x, y, map.get(x, y));
                }
            }
        }
        assert_eq!((best.0, best.1), (5, 9));
    }

    #[test]
    fn scores_bounded_in_unit_interval() {
        let img = GrayImage::from_fn(20, 20, |x, y| ((x * 13 + y * 7) % 9) as f32 * 0.1 + 0.05);
        let pat = img.crop(4, 4, 5, 5).unwrap();
        let map = score_map(&img, &pat).unwrap();
        for &s in map.pixels() {
            assert!((-1.0..=1.0).contains(&s), "score {s}");
        }
        // And the planted crop matches perfectly somewhere.
        let m = match_template(&img, &pat).unwrap();
        assert!(m.score > 0.999);
    }

    #[test]
    fn pyramid_match_agrees_with_exact_on_planted_pattern() {
        let (img, blob) = image_with_blob(96, 80, 51, 33);
        let exact = match_template(&img, &blob).unwrap();
        let fast = match_template_pyramid(&img, &blob, &PyramidMatchConfig::default()).unwrap();
        assert_eq!((fast.x, fast.y), (exact.x, exact.y));
        assert!((fast.score - exact.score).abs() < 1e-3);
    }

    #[test]
    fn pyramid_match_small_pattern_falls_back_to_exact() {
        let mut img = GrayImage::filled(30, 30, 0.1);
        img.fill_rect(12, 14, 3, 3, 0.9);
        let mut pat = GrayImage::filled(3, 3, 0.9);
        pat.set(1, 1, 0.95);
        let m = match_template_pyramid(&img, &pat, &PyramidMatchConfig::default()).unwrap();
        // The bright 3x3 block is the only textured region resembling the
        // pattern; the fallback exact matcher must look there.
        assert!(
            (11..=15).contains(&m.x) && (13..=17).contains(&m.y),
            "found at ({}, {})",
            m.x,
            m.y
        );
    }

    #[test]
    fn pyramid_match_score_close_to_exact_on_textured_image() {
        let img = GrayImage::from_fn(128, 64, |x, y| {
            0.3 + 0.2 * ((x as f32 * 0.3).sin() * (y as f32 * 0.23).cos())
        });
        let pat = img.crop(70, 20, 16, 12).unwrap();
        let exact = match_template(&img, &pat).unwrap();
        let fast = match_template_pyramid(&img, &pat, &PyramidMatchConfig::default()).unwrap();
        assert!(
            fast.score >= exact.score - 0.02,
            "pyramid {} vs exact {}",
            fast.score,
            exact.score
        );
    }

    #[test]
    fn pyramid_config_with_one_level_equals_exact() {
        let (img, blob) = image_with_blob(48, 48, 20, 20);
        let cfg = PyramidMatchConfig {
            max_levels: 1,
            ..Default::default()
        };
        let m = match_template_pyramid(&img, &blob, &cfg).unwrap();
        let exact = match_template(&img, &blob).unwrap();
        assert_eq!((m.x, m.y, m.score), (exact.x, exact.y, exact.score));
    }

    #[test]
    fn centred_mean_survives_large_patterns() {
        // 256x256 (GAN-sized) pattern around 0.7 with a tiny wiggle: an
        // f32 sum over 65536 such pixels drifts the mean by ~1e-5, which
        // decentres every pixel by the same amount. The f64 accumulator
        // keeps the centred pixel sum at f32 rounding level.
        let pat = GrayImage::from_fn(256, 256, |x, y| {
            0.7 + 1e-4 * (((x * 31 + y * 17) % 13) as f32 - 6.0)
        });
        let prepared = CenteredPattern::new(&pat);
        let n = pat.len() as f64;
        let residual = prepared
            .centered
            .pixels()
            .iter()
            .map(|&p| p as f64)
            .sum::<f64>()
            / n;
        assert!(residual.abs() < 2e-7, "mean residual {residual}");
    }

    #[test]
    fn insert_topk_keeps_best() {
        let mut heap = Vec::new();
        for (i, s) in [0.1f32, 0.9, 0.5, 0.7, 0.2].iter().enumerate() {
            insert_topk(
                &mut heap,
                MatchResult {
                    x: i,
                    y: 0,
                    score: *s,
                },
                3,
            );
        }
        let scores: Vec<f32> = heap.iter().map(|m| m.score).collect();
        assert_eq!(scores, vec![0.9, 0.7, 0.5]);
    }

    #[test]
    fn insert_topk_tie_scores_match_push_then_sort() {
        // Ties must keep insertion order and a full list must only be
        // disturbed by a strictly greater score — exactly what the old
        // push-then-stable-sort did. Run both side by side.
        let items = [
            (0usize, 0.5f32),
            (1, 0.7),
            (2, 0.5),
            (3, 0.7),
            (4, 0.4),
            (5, 0.7),
            (6, 0.9),
        ];
        let k = 4;
        let mut heap = Vec::new();
        let mut reference: Vec<MatchResult> = Vec::new();
        for (i, s) in items {
            let item = MatchResult {
                x: i,
                y: 0,
                score: s,
            };
            insert_topk(&mut heap, item, k);
            if reference.len() < k {
                reference.push(item);
                reference.sort_by(|a, b| b.score.total_cmp(&a.score));
            } else if reference.last().is_some_and(|last| item.score > last.score) {
                reference.pop();
                reference.push(item);
                reference.sort_by(|a, b| b.score.total_cmp(&a.score));
            }
        }
        let got: Vec<(usize, f32)> = heap.iter().map(|m| (m.x, m.score)).collect();
        let want: Vec<(usize, f32)> = reference.iter().map(|m| (m.x, m.score)).collect();
        assert_eq!(got, want);
        // Spot-check the tie order: both 0.7s that fit arrived before any
        // displacement, so they sit in arrival order after the 0.9.
        assert_eq!(
            heap.iter().map(|m| m.x).collect::<Vec<_>>(),
            vec![6, 1, 3, 5]
        );
    }

    /// Deterministic texture for the parity tests — a tiny LCG so the
    /// same pixels appear in every environment with no RNG dependency.
    fn lcg_image(w: usize, h: usize, mut state: u64) -> GrayImage {
        GrayImage::from_fn(w, h, |_, _| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) % 1000) as f32 / 1000.0
        })
    }

    #[test]
    fn row_sweep_bit_identical_to_pearson_at() {
        // The one-pass sweep must reproduce `pearson_at` bit for bit at
        // every placement — same window terms, same dot product, same
        // clamp. Covers odd dims, near-square and skinny patterns.
        for (iw, ih, pw, ph, seed) in [
            (17, 13, 5, 4, 1u64),
            (24, 24, 8, 8, 2),
            (31, 9, 7, 3, 3),
            (12, 29, 3, 11, 4),
            (9, 9, 9, 9, 5),
        ] {
            let img = lcg_image(iw, ih, seed);
            let pat = lcg_image(pw, ph, seed ^ 0xdead_beef);
            let centered = CenteredPattern::new(&pat);
            let sums = ImageSums::new(&img);
            let mut emitted = 0usize;
            ncc_row_sweep(&img, &centered, &sums, |x, y, s| {
                let reference = pearson_at(&img, &centered, x, y, &sums);
                assert!(
                    s.to_bits() == reference.to_bits(),
                    "({iw}x{ih}, {pw}x{ph}) at ({x},{y}): sweep {s} vs pearson {reference}"
                );
                emitted += 1;
            });
            assert_eq!(emitted, (iw - pw + 1) * (ih - ph + 1));
        }
    }

    #[test]
    fn row_sweep_flat_regions_score_zero_like_pearson_at() {
        // A flat stripe inside a textured image: the sweep and the scalar
        // path must agree the degenerate windows score exactly 0.0.
        let mut img = lcg_image(20, 16, 7);
        for y in 4..10 {
            for x in 3..15 {
                img.set(x, y, 0.5);
            }
        }
        let pat = lcg_image(4, 4, 11);
        let centered = CenteredPattern::new(&pat);
        let sums = ImageSums::new(&img);
        let mut saw_zero = false;
        ncc_row_sweep(&img, &centered, &sums, |x, y, s| {
            let reference = pearson_at(&img, &centered, x, y, &sums);
            assert_eq!(s.to_bits(), reference.to_bits());
            if x >= 3 && x + 4 <= 15 && y >= 4 && y + 4 <= 10 {
                assert_eq!(s, 0.0, "flat window at ({x},{y})");
                saw_zero = true;
            }
        });
        assert!(saw_zero);
    }
}
