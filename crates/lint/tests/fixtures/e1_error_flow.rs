//! E1 fixture: a fallible result must reach `?`, `match`, or a sink.

fn try_save(path: &str) -> Result<(), String> {
    Ok(())
}

pub fn swallows_errors(path: &str) {
    let _ = try_save(path);
    try_save(path).ok();
    let n = from_str(path).unwrap_or_default();
    let status = try_save(path);
    consume(n);
}

pub fn handles_errors(path: &str) -> Result<(), String> {
    try_save(path)?;
    if let Err(e) = try_save(path) {
        log(e);
    }
    let r = try_save(path);
    match r {
        Ok(()) => {}
        Err(_) => {}
    }
    let _guard = try_save(path);
    Ok(())
}

pub fn annotated(path: &str) {
    let _ = try_save(path); // ig-lint: allow(error-flow) -- best-effort cache write
}
