//! Byte codecs for durable artifacts.
//!
//! The on-disk tier of the artifact store ([`crate::DiskStore`]) holds
//! raw byte payloads; this module defines the little-endian writer/reader
//! pair those payloads are built from and the [`Durable`] trait that
//! maps artifact types onto them. The contract is *bit-identical
//! round-trip*: `decode(encode(x))` must reproduce every bit of `x`
//! (floats travel as IEEE-754 bit patterns, never through text), and
//! decoding must consume the buffer exactly — trailing or missing bytes
//! are a decode failure, not a tolerated fuzz. Decoders are total
//! functions returning `Option`: arbitrary (truncated, bit-flipped)
//! input must produce `None`, never a panic or a wrong value that
//! happens to parse.

use ig_imaging::GrayImage;
use ig_nn::Matrix;
use ig_synth::{Dataset, LabeledImage, TaskType};

/// Little-endian byte writer for durable payloads.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty buffer.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Finished payload bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `usize` widened to `u64` (payloads are
    /// platform-independent for any count below 2^64).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Append a bool as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Append an `f32` by bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Append a length-prefixed `f32` slice by bit patterns.
    pub fn put_f32s(&mut self, values: &[f32]) {
        self.put_usize(values.len());
        for &v in values {
            self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
}

/// Little-endian byte reader mirroring [`Enc`]. Every getter returns
/// `None` on underrun instead of panicking.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Reader over `buf` starting at offset 0.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    /// True when the buffer was consumed exactly.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Take `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Read one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)?.try_into().ok().map(u32::from_le_bytes)
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)?.try_into().ok().map(u64::from_le_bytes)
    }

    /// Read a `usize` (rejects counts above the platform width).
    pub fn usize_(&mut self) -> Option<usize> {
        self.u64()?.try_into().ok()
    }

    /// Read a bool; any byte other than 0/1 is a decode failure.
    pub fn bool_(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    /// Read an `f32` by bit pattern.
    pub fn f32(&mut self) -> Option<f32> {
        self.u32().map(f32::from_bits)
    }

    /// Read a length-prefixed byte string.
    pub fn bytes(&mut self) -> Option<&'a [u8]> {
        let len = self.usize_()?;
        // Reject lengths that cannot fit in what remains before
        // allocating anything proportional to them.
        if len > self.remaining() {
            return None;
        }
        self.take(len)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str_(&mut self) -> Option<&'a str> {
        std::str::from_utf8(self.bytes()?).ok()
    }

    /// Read a length-prefixed `f32` slice by bit patterns.
    pub fn f32s(&mut self) -> Option<Vec<f32>> {
        let len = self.usize_()?;
        if len.checked_mul(4)? > self.remaining() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.f32()?);
        }
        Some(out)
    }
}

/// Artifact types the on-disk store can hold.
///
/// `decode_durable(encode_durable(x))` must be bit-identical to `x`, and
/// decoding must reject malformed buffers with `None` (the disk tier
/// quarantines the file and recomputes). [`Durable::from_bytes`]
/// additionally requires the buffer be consumed exactly.
pub trait Durable: Sized {
    /// Append this value to `enc`.
    fn encode_durable(&self, enc: &mut Enc);

    /// Read one value from `dec`, or `None` on any malformation.
    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self>;

    /// Standalone payload bytes for this value.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        self.encode_durable(&mut enc);
        enc.into_bytes()
    }

    /// Decode a standalone payload; trailing bytes are a failure.
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut dec = Dec::new(bytes);
        let value = Self::decode_durable(&mut dec)?;
        dec.done().then_some(value)
    }
}

impl Durable for Matrix {
    fn encode_durable(&self, enc: &mut Enc) {
        enc.put_usize(self.rows());
        enc.put_usize(self.cols());
        enc.put_f32s(self.as_slice());
    }

    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self> {
        let rows = dec.usize_()?;
        let cols = dec.usize_()?;
        let data = dec.f32s()?;
        if data.len() != rows.checked_mul(cols)? {
            return None;
        }
        Some(Matrix::from_vec(rows, cols, data))
    }
}

impl Durable for GrayImage {
    fn encode_durable(&self, enc: &mut Enc) {
        enc.put_usize(self.width());
        enc.put_usize(self.height());
        enc.put_f32s(self.pixels());
    }

    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self> {
        let width = dec.usize_()?;
        let height = dec.usize_()?;
        let pixels = dec.f32s()?;
        if pixels.len() != width.checked_mul(height)? {
            return None;
        }
        GrayImage::from_vec(width, height, pixels).ok()
    }
}

impl Durable for ig_imaging::BBox {
    fn encode_durable(&self, enc: &mut Enc) {
        enc.put_f32(self.x);
        enc.put_f32(self.y);
        enc.put_f32(self.w);
        enc.put_f32(self.h);
    }

    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self> {
        Some(ig_imaging::BBox {
            x: dec.f32()?,
            y: dec.f32()?,
            w: dec.f32()?,
            h: dec.f32()?,
        })
    }
}

impl Durable for TaskType {
    fn encode_durable(&self, enc: &mut Enc) {
        match self {
            TaskType::Binary => enc.put_u8(0),
            TaskType::MultiClass(k) => {
                enc.put_u8(1);
                enc.put_usize(*k);
            }
        }
    }

    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self> {
        match dec.u8()? {
            0 => Some(TaskType::Binary),
            1 => Some(TaskType::MultiClass(dec.usize_()?)),
            _ => None,
        }
    }
}

impl<T: Durable> Durable for Vec<T> {
    fn encode_durable(&self, enc: &mut Enc) {
        enc.put_usize(self.len());
        for item in self {
            item.encode_durable(enc);
        }
    }

    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self> {
        let len = dec.usize_()?;
        // Every element costs at least one byte on the wire; a length
        // prefix larger than the remaining buffer is malformed, and this
        // check keeps allocation bounded by the input size.
        if len > dec.remaining() {
            return None;
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode_durable(dec)?);
        }
        Some(out)
    }
}

impl Durable for LabeledImage {
    fn encode_durable(&self, enc: &mut Enc) {
        self.image.encode_durable(enc);
        enc.put_usize(self.label);
        self.defect_boxes.encode_durable(enc);
        enc.put_bool(self.noisy);
        enc.put_bool(self.difficult);
    }

    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self> {
        Some(LabeledImage {
            image: GrayImage::decode_durable(dec)?,
            label: dec.usize_()?,
            defect_boxes: Vec::decode_durable(dec)?,
            noisy: dec.bool_()?,
            difficult: dec.bool_()?,
        })
    }
}

impl Durable for Dataset {
    fn encode_durable(&self, enc: &mut Enc) {
        enc.put_str(&self.name);
        self.task.encode_durable(enc);
        self.images.encode_durable(enc);
    }

    fn decode_durable(dec: &mut Dec<'_>) -> Option<Self> {
        Some(Dataset {
            name: dec.str_()?.to_string(),
            task: TaskType::decode_durable(dec)?,
            images: Vec::decode_durable(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        let mut enc = Enc::new();
        enc.put_u8(7);
        enc.put_u32(0xdead_beef);
        enc.put_u64(u64::MAX - 3);
        enc.put_usize(12345);
        enc.put_bool(true);
        enc.put_f32(-0.0);
        enc.put_bytes(b"abc");
        enc.put_str("svamp");
        enc.put_f32s(&[1.5, f32::NAN, -2.25]);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        assert_eq!(dec.u8(), Some(7));
        assert_eq!(dec.u32(), Some(0xdead_beef));
        assert_eq!(dec.u64(), Some(u64::MAX - 3));
        assert_eq!(dec.usize_(), Some(12345));
        assert_eq!(dec.bool_(), Some(true));
        assert_eq!(dec.f32().map(f32::to_bits), Some((-0.0f32).to_bits()));
        assert_eq!(dec.bytes(), Some(b"abc".as_slice()));
        assert_eq!(dec.str_(), Some("svamp"));
        let f = dec.f32s().unwrap_or_default();
        assert_eq!(f.len(), 3);
        assert!(f[1].is_nan());
        assert!(dec.done());
    }

    #[test]
    fn underrun_returns_none_not_panic() {
        let mut dec = Dec::new(&[1, 2, 3]);
        assert_eq!(dec.u64(), None);
        let mut dec = Dec::new(&[255]);
        assert_eq!(dec.bool_(), None, "non-0/1 bool byte rejected");
        // Length prefix far beyond the buffer: rejected before allocating.
        let mut enc = Enc::new();
        enc.put_usize(usize::MAX / 2);
        let huge = enc.into_bytes();
        assert_eq!(Dec::new(&huge).bytes(), None);
        assert!(Dec::new(&huge).f32s().is_none());
    }

    #[test]
    fn matrix_round_trip_is_bit_identical() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.125 - 1.0);
        let bytes = m.to_bytes();
        let back = Matrix::from_bytes(&bytes).unwrap_or_else(|| Matrix::from_vec(0, 0, vec![]));
        assert_eq!((back.rows(), back.cols()), (3, 5));
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn matrix_shape_mismatch_rejected() {
        let m = Matrix::from_fn(2, 2, |_, _| 1.0);
        let mut bytes = m.to_bytes();
        // Corrupt the row count: 2 -> 3 (first u64 little-endian).
        if let Some(b) = bytes.first_mut() {
            *b = 3;
        }
        assert!(Matrix::from_bytes(&bytes).is_none());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let m = Matrix::from_fn(1, 1, |_, _| 0.5);
        let mut bytes = m.to_bytes();
        bytes.push(0);
        assert!(Matrix::from_bytes(&bytes).is_none());
    }

    #[test]
    fn dataset_round_trip_is_bit_identical() {
        let spec = ig_synth::spec::DatasetSpec::quick(ig_synth::spec::DatasetKind::Ksdd, 11);
        let dataset = ig_synth::generate(&spec);
        let bytes = dataset.to_bytes();
        let back = match Dataset::from_bytes(&bytes) {
            Some(d) => d,
            None => {
                assert!(false, "dataset payload failed to decode");
                return;
            }
        };
        assert_eq!(back.name, dataset.name);
        assert_eq!(back.task, dataset.task);
        assert_eq!(back.images.len(), dataset.images.len());
        for (a, b) in dataset.images.iter().zip(&back.images) {
            assert_eq!(a.label, b.label);
            assert_eq!(a.noisy, b.noisy);
            assert_eq!(a.difficult, b.difficult);
            assert_eq!(a.defect_boxes.len(), b.defect_boxes.len());
            assert_eq!(a.image.dims(), b.image.dims());
            for (pa, pb) in a.image.pixels().iter().zip(b.image.pixels()) {
                assert_eq!(pa.to_bits(), pb.to_bits());
            }
        }
    }

    #[test]
    fn truncated_dataset_rejected_at_every_length() {
        let spec = ig_synth::spec::DatasetSpec::quick(ig_synth::spec::DatasetKind::Neu, 3);
        let dataset = ig_synth::generate(&spec);
        let bytes = dataset.to_bytes();
        // Cutting the payload anywhere must fail cleanly. Step through a
        // spread of prefixes rather than every byte (the payload is large).
        let step = (bytes.len() / 97).max(1);
        let mut cut = 0;
        while cut < bytes.len() {
            assert!(
                Dataset::from_bytes(&bytes[..cut]).is_none(),
                "truncation at {cut} accepted"
            );
            cut += step;
        }
    }
}
