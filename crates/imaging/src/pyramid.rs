//! Gaussian image pyramids (Adelson, Anderson, Bergen, Burt & Ogden, 1984).
//!
//! The paper cites the pyramid method to avoid scanning full-resolution
//! industrial images with every pattern: a match is first localized on a
//! low-resolution level and only the candidate neighbourhoods are rescored
//! at full resolution (Section 5.1).

use crate::filter::{gaussian_blur_with_kernel, gaussian_kernel};
use crate::resize::resize_bilinear;
use crate::GrayImage;

/// Standard deviation of the anti-aliasing blur applied before each
/// decimation step.
const PYRAMID_SIGMA: f32 = 1.0;

/// A Gaussian pyramid: `levels[0]` is the original image, each subsequent
/// level is blurred and downsampled by 2.
#[derive(Debug, Clone)]
pub struct Pyramid {
    levels: Vec<GrayImage>,
}

impl Pyramid {
    /// Build a pyramid with up to `max_levels` levels (including the base).
    /// Construction stops early when a level would drop below
    /// `min_side` pixels on either axis, so every stored level is usable
    /// for matching.
    pub fn build(base: &GrayImage, max_levels: usize, min_side: usize) -> Self {
        let min_side = min_side.max(1);
        let mut levels = vec![base.clone()];
        // Every level is blurred with the same sigma, so the Gaussian taps
        // are computed once and reused across the whole pyramid instead of
        // being reallocated per level (H1 hoist; see crates/bench/NOTES.md).
        let kernel = gaussian_kernel(PYRAMID_SIGMA);
        while levels.len() < max_levels.max(1) {
            // `levels` starts non-empty and only grows, but the panic-free
            // spelling costs nothing.
            let Some(prev) = levels.last() else { break };
            let (w, h) = prev.dims();
            let (nw, nh) = (w / 2, h / 2);
            if nw < min_side || nh < min_side {
                break;
            }
            let blurred = gaussian_blur_with_kernel(prev, &kernel);
            // Target dims were validated above; if resize still refuses,
            // stop refining instead of tearing the worker down.
            let Ok(down) = resize_bilinear(&blurred, nw, nh) else {
                break;
            };
            levels.push(down);
        }
        Self { levels }
    }

    /// Number of levels, always ≥ 1.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// Borrow level `i` (0 = full resolution).
    pub fn level(&self, i: usize) -> &GrayImage {
        &self.levels[i]
    }

    /// Approximate heap footprint of every level's pixel buffer, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.levels.iter().map(GrayImage::approx_bytes).sum()
    }

    /// Borrow all levels, coarsest last.
    pub fn levels(&self) -> &[GrayImage] {
        &self.levels
    }

    /// Dimensions of level `i`, or `None` past the last level — the
    /// panic-free probe the NCC planner uses to key its per-level
    /// decisions without borrowing the level pixels.
    pub fn level_dims(&self, i: usize) -> Option<(usize, usize)> {
        self.levels.get(i).map(|l| l.dims())
    }

    /// Scale factor of level `i` relative to the base (`2^i`).
    pub fn scale(&self, i: usize) -> usize {
        1usize << i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_level_is_original() {
        let img = GrayImage::from_fn(16, 16, |x, y| (x + y) as f32);
        let pyr = Pyramid::build(&img, 3, 4);
        assert_eq!(pyr.level(0), &img);
    }

    #[test]
    fn levels_halve_dimensions() {
        let img = GrayImage::filled(32, 24, 0.5);
        let pyr = Pyramid::build(&img, 4, 2);
        assert_eq!(pyr.num_levels(), 4);
        assert_eq!(pyr.level(1).dims(), (16, 12));
        assert_eq!(pyr.level(2).dims(), (8, 6));
        assert_eq!(pyr.level(3).dims(), (4, 3));
    }

    #[test]
    fn stops_at_min_side() {
        let img = GrayImage::filled(32, 8, 0.5);
        let pyr = Pyramid::build(&img, 10, 4);
        // 8 -> 4 is allowed, 4 -> 2 is below min_side 4.
        assert_eq!(pyr.num_levels(), 2);
        assert_eq!(pyr.level(1).dims(), (16, 4));
    }

    #[test]
    fn single_level_requested() {
        let img = GrayImage::filled(16, 16, 1.0);
        let pyr = Pyramid::build(&img, 1, 1);
        assert_eq!(pyr.num_levels(), 1);
    }

    #[test]
    fn tiny_image_yields_single_level() {
        let img = GrayImage::filled(3, 3, 1.0);
        let pyr = Pyramid::build(&img, 5, 4);
        assert_eq!(pyr.num_levels(), 1);
    }

    #[test]
    fn constant_image_stays_constant_at_every_level() {
        let img = GrayImage::filled(40, 40, 0.3);
        let pyr = Pyramid::build(&img, 4, 2);
        for level in pyr.levels() {
            for &p in level.pixels() {
                assert!((p - 0.3).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn scale_is_power_of_two() {
        let img = GrayImage::filled(64, 64, 0.0);
        let pyr = Pyramid::build(&img, 4, 2);
        assert_eq!(pyr.scale(0), 1);
        assert_eq!(pyr.scale(2), 4);
    }
}
