//! Error-cause taxonomy (paper Section 6.7 / Table 6).
//!
//! The paper manually classifies Inspector Gadget's mistakes into three
//! causes: **matching failure** (no pattern matched the defect — the
//! dominant class), **noisy data**, and **difficult to humans** (near-
//! invisible defects). The synthetic datasets in `ig-synth` tag every
//! image with ground-truth noise/difficulty flags, so the same taxonomy
//! can be applied mechanically here.

use serde::{Deserialize, Serialize};

/// Why Inspector Gadget got a sample wrong.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorCause {
    /// The defect exists but no pattern produced a strong similarity — the
    /// feature vector carried no signal.
    MatchingFailure,
    /// The image carries injected acquisition noise that corrupted either
    /// the features or the label.
    NoisyData,
    /// The defect is so faint that even the gold annotators (humans in the
    /// paper, the generator's difficulty flag here) struggle.
    DifficultToHumans,
}

/// Ground-truth diagnostics attached to each evaluated sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleDiagnostics {
    /// Gold label says defect (binary tasks) / the gold class matched
    /// (multi-class tasks reduced to correct-vs-not).
    pub mispredicted: bool,
    /// Generator marked the image as noise-corrupted.
    pub noisy: bool,
    /// Generator marked the defect as near-invisible.
    pub difficult: bool,
    /// Maximum FGF similarity across all patterns for this image.
    pub max_similarity: f32,
}

/// Error counts per cause plus the total (paper Table 6 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ErrorBreakdown {
    /// Matching-failure errors.
    pub matching_failure: usize,
    /// Noisy-data errors.
    pub noisy_data: usize,
    /// Difficult-to-humans errors.
    pub difficult: usize,
}

impl ErrorBreakdown {
    /// Total errors.
    pub fn total(&self) -> usize {
        self.matching_failure + self.noisy_data + self.difficult
    }

    /// Percentage share of each cause, in Table 6's column order.
    pub fn percentages(&self) -> [f64; 3] {
        let t = self.total();
        if t == 0 {
            return [0.0; 3];
        }
        [
            100.0 * self.matching_failure as f64 / t as f64,
            100.0 * self.noisy_data as f64 / t as f64,
            100.0 * self.difficult as f64 / t as f64,
        ]
    }
}

/// Assign a cause to a single mispredicted sample.
///
/// Priority follows the paper's narrative: difficulty (a property of the
/// defect itself) dominates, then injected noise, and anything else is a
/// matching failure — as is any error whose best pattern similarity fell
/// below `similarity_threshold` regardless of flags, because a silent
/// feature vector is the proximate cause.
pub fn categorize(diag: &SampleDiagnostics, similarity_threshold: f32) -> ErrorCause {
    if diag.max_similarity < similarity_threshold {
        ErrorCause::MatchingFailure
    } else if diag.difficult {
        ErrorCause::DifficultToHumans
    } else if diag.noisy {
        ErrorCause::NoisyData
    } else {
        ErrorCause::MatchingFailure
    }
}

/// Tally causes over all mispredicted samples.
pub fn categorize_errors(
    diagnostics: &[SampleDiagnostics],
    similarity_threshold: f32,
) -> ErrorBreakdown {
    let mut out = ErrorBreakdown {
        matching_failure: 0,
        noisy_data: 0,
        difficult: 0,
    };
    for d in diagnostics.iter().filter(|d| d.mispredicted) {
        match categorize(d, similarity_threshold) {
            ErrorCause::MatchingFailure => out.matching_failure += 1,
            ErrorCause::NoisyData => out.noisy_data += 1,
            ErrorCause::DifficultToHumans => out.difficult += 1,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(mispredicted: bool, noisy: bool, difficult: bool, sim: f32) -> SampleDiagnostics {
        SampleDiagnostics {
            mispredicted,
            noisy,
            difficult,
            max_similarity: sim,
        }
    }

    #[test]
    fn low_similarity_always_matching_failure() {
        let d = diag(true, true, true, 0.1);
        assert_eq!(categorize(&d, 0.5), ErrorCause::MatchingFailure);
    }

    #[test]
    fn difficulty_beats_noise_above_threshold() {
        let d = diag(true, true, true, 0.9);
        assert_eq!(categorize(&d, 0.5), ErrorCause::DifficultToHumans);
    }

    #[test]
    fn noise_without_difficulty() {
        let d = diag(true, true, false, 0.9);
        assert_eq!(categorize(&d, 0.5), ErrorCause::NoisyData);
    }

    #[test]
    fn clean_high_similarity_error_is_matching_failure() {
        // The pattern matched *something* but the labeler still failed —
        // the paper counts these as matching problems too.
        let d = diag(true, false, false, 0.9);
        assert_eq!(categorize(&d, 0.5), ErrorCause::MatchingFailure);
    }

    #[test]
    fn only_mispredictions_counted() {
        let all = vec![
            diag(false, true, true, 0.1), // correct: ignored
            diag(true, false, false, 0.2),
            diag(true, true, false, 0.8),
            diag(true, false, true, 0.8),
        ];
        let b = categorize_errors(&all, 0.5);
        assert_eq!(b.total(), 3);
        assert_eq!(b.matching_failure, 1);
        assert_eq!(b.noisy_data, 1);
        assert_eq!(b.difficult, 1);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let b = ErrorBreakdown {
            matching_failure: 10,
            noisy_data: 5,
            difficult: 4,
        };
        let p = b.percentages();
        assert!((p.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((p[0] - 52.63).abs() < 0.01);
    }

    #[test]
    fn empty_breakdown_percentages_zero() {
        let b = ErrorBreakdown {
            matching_failure: 0,
            noisy_data: 0,
            difficult: 0,
        };
        assert_eq!(b.percentages(), [0.0; 3]);
    }
}
