//! A1: atomic-ordering discipline — `Ordering::Relaxed` is for counters,
//! not coordination.
//!
//! `Relaxed` guarantees atomicity of the single access and nothing else:
//! no happens-before edge, no publication of the writes that preceded it.
//! That is exactly right for statistics counters (`hits.fetch_add(1, _)`
//! as a statement) and exactly wrong the moment the value *means*
//! something to another thread. Three shapes are flagged, over the thread
//! topology from [`crate::threads`]:
//!
//! 1. **Relaxed load gating control flow** — the loaded value feeds an
//!    `if`/`while`/`match` condition, directly or through one local
//!    binding. A gate wants `Acquire` (or the store side wants `Release`)
//!    or the branch can run against stale pre-publication state.
//! 2. **Relaxed store publishing across a spawn boundary** — the stored
//!    atomic's name is in some worker closure's escape set in the same
//!    file. Publication wants `Release`.
//! 3. **Relaxed read-modify-write whose result is consumed** — an RMW
//!    whose return value is bound or used is a handshake (ticket counter,
//!    id allocator), not a counter. Atomicity alone *can* be sufficient
//!    (unique-id allocation needs no ordering), so this one is commonly
//!    blessed — but the blessing must say why.
//!
//! Blessing is per-site (annotation on the firing line) or **per-field**:
//! an `ig-lint: allow(atomic-ordering) -- reason` on an atomic field's
//! declaration blesses every flagged access to `self.<field>` in that
//! file. Statement-level counter increments never fire at all.

use std::collections::{BTreeMap, BTreeSet};

use crate::ast::{walk_block, walk_stmts, Expr, ExprKind, LetPat, Span, Stmt};
use crate::context::{FileClass, FileContext};
use crate::lexer::TokenKind;
use crate::report::Diagnostic;
use crate::symbols::Symbols;
use crate::threads::ThreadTopology;

/// Atomic read-modify-write method names.
const RMW_METHODS: &[&str] = &[
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Does any argument name `Ordering::Relaxed` (however qualified)?
fn has_relaxed_arg(args: &[Expr]) -> bool {
    args.iter().any(
        |a| matches!(&a.kind, ExprKind::Path(segs) if segs.last().is_some_and(|s| s == "Relaxed")),
    )
}

/// The name a flagged access is keyed by: the final field name for
/// `self.hits.load(..)` / `inner.clock.store(..)`, the root identifier
/// for a plain local (`cursor.fetch_add(..)`).
fn recv_key(recv: &Expr) -> Option<(String, bool)> {
    match &recv.kind {
        ExprKind::Field { name, .. } => Some((name.clone(), true)),
        ExprKind::Path(segs) => match segs.as_slice() {
            [only] => Some((only.clone(), false)),
            _ => None,
        },
        ExprKind::Unary(inner) => recv_key(inner),
        _ => None,
    }
}

/// Lines of atomic field declarations, keyed by field name: an ident
/// followed by `:` with an `Atomic*` type within reach. Lexical on
/// purpose — struct items are opaque spans to the AST.
fn atomic_field_decl_lines(ctx: &FileContext) -> BTreeMap<String, u32> {
    let toks = ctx.tokens;
    let mut out = BTreeMap::new();
    for i in 0..toks.len().saturating_sub(2) {
        if toks[i].kind != TokenKind::Ident || !toks[i + 1].is_punct(":") {
            continue;
        }
        let is_atomic_ty = toks[i + 2..toks.len().min(i + 8)].iter().any(|t| {
            t.kind == TokenKind::Ident && (t.text.starts_with("Atomic") || t.text == "AtomicCell")
        });
        if is_atomic_ty {
            out.entry(toks[i].text.clone()).or_insert(toks[i].line);
        }
    }
    out
}

/// Token ranges of `while` conditions in a fn span. The AST drops loop
/// conditions, so these are recovered lexically: from the `while` keyword
/// to its body's opening `{` at bracket depth zero.
fn while_cond_spans(ctx: &FileContext, fn_span: Span) -> Vec<Span> {
    let toks = ctx.tokens;
    let mut out = Vec::new();
    let hi = fn_span.hi.min(toks.len());
    for i in fn_span.lo..hi {
        if !toks[i].is_ident("while") {
            continue;
        }
        let mut depth = 0i32;
        for j in i + 1..hi {
            let t = &toks[j];
            if t.is_punct("(") || t.is_punct("[") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") {
                depth -= 1;
            } else if t.is_punct("{") && depth == 0 {
                out.push(Span { lo: i + 1, hi: j });
                break;
            } else if t.is_punct(";") && depth == 0 {
                break;
            }
        }
    }
    out
}

/// Does any ident token equal to `name` fall inside one of the spans?
fn name_in_spans(ctx: &FileContext, spans: &[Span], name: &str) -> bool {
    spans.iter().any(|sp| {
        sp.tokens(ctx.tokens)
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.text == name)
    })
}

fn tok_in_spans(spans: &[Span], tok: usize) -> bool {
    spans.iter().any(|sp| (sp.lo..sp.hi).contains(&tok))
}

fn diag(ctx: &FileContext, tok: usize, message: String) -> Diagnostic {
    let (line, col) = ctx.tokens.get(tok).map_or((0, 1), |t| (t.line, t.col));
    Diagnostic {
        rule: "atomic-ordering".to_string(),
        path: ctx.path.to_string(),
        line,
        col,
        message,
    }
}

pub fn check(ctxs: &[FileContext], sy: &Symbols, topo: &ThreadTopology, out: &mut Vec<Diagnostic>) {
    // Escape sets per file: the union of non-test worker-closure captures.
    let mut escapes: BTreeMap<usize, BTreeSet<&str>> = BTreeMap::new();
    for site in &topo.sites {
        if !site.in_test {
            escapes
                .entry(site.file)
                .or_default()
                .extend(site.captures.iter().map(String::as_str));
        }
    }
    for (fi, ctx) in ctxs.iter().enumerate() {
        if ctx.class != FileClass::Library {
            continue;
        }
        let blessed_fields = atomic_field_decl_lines(ctx);
        let escape = escapes.get(&fi);
        for s in sy.fns.iter().filter(|s| s.file == fi && !s.in_test) {
            let f = &ctx.ast.fns[s.fn_idx];
            // Condition regions: `if`/`match`/`if let` come from the AST,
            // `while` conditions lexically (the parser drops them).
            let mut conds = while_cond_spans(ctx, f.span);
            walk_block(&f.body, &mut |e: &Expr| match &e.kind {
                ExprKind::If { cond, .. } => conds.push(cond.span),
                ExprKind::Match { scrutinee, .. } => conds.push(scrutinee.span),
                ExprKind::LetCond { expr, .. } => conds.push(expr.span),
                _ => {}
            });
            // Named let bindings (for the one-hop gate check) and
            // statement-level RMW discards (never flagged).
            let mut lets: Vec<(&str, Span)> = Vec::new();
            let mut discarded: BTreeSet<usize> = BTreeSet::new();
            walk_stmts(&f.body, &mut |st: &Stmt| match st {
                Stmt::Let(l) => {
                    if let (LetPat::Name { name, .. }, Some(init)) = (&l.pat, &l.init) {
                        lets.push((name, init.span));
                    }
                    if let (LetPat::Wild(_), Some(init)) = (&l.pat, &l.init) {
                        if let ExprKind::MethodCall { method_tok, .. } = &init.kind {
                            discarded.insert(*method_tok);
                        }
                    }
                }
                Stmt::Expr(es) if es.has_semi => {
                    if let ExprKind::MethodCall { method_tok, .. } = &es.expr.kind {
                        discarded.insert(*method_tok);
                    }
                }
                _ => {}
            });
            walk_block(&f.body, &mut |e: &Expr| {
                let ExprKind::MethodCall {
                    recv,
                    method,
                    method_tok,
                    args,
                } = &e.kind
                else {
                    return;
                };
                if !has_relaxed_arg(args) || !ctx.governed(*method_tok) {
                    return;
                }
                let Some((key, is_field)) = recv_key(recv) else {
                    return;
                };
                let fire = |out: &mut Vec<Diagnostic>, msg: String| {
                    // Per-field blessing: an allow on the atomic field's
                    // declaration covers every access to it in this file.
                    if is_field {
                        if let Some(&decl_line) = blessed_fields.get(&key) {
                            if ctx.allows.is_allowed("atomic-ordering", decl_line) {
                                return;
                            }
                        }
                    }
                    out.push(diag(ctx, *method_tok, msg));
                };
                match method.as_str() {
                    "load" => {
                        let direct = tok_in_spans(&conds, *method_tok);
                        let via_local = lets.iter().any(|(name, init)| {
                            (init.lo..init.hi).contains(method_tok)
                                && name_in_spans(ctx, &conds, name)
                        });
                        if direct || via_local {
                            fire(
                                out,
                                format!(
                                    "`Ordering::Relaxed` load of `{key}` gates control flow — a \
                                 Relaxed load carries no happens-before edge, so the branch can \
                                 observe stale pre-publication state; use `Acquire` here (and \
                                 `Release` on the store side), or bless the field declaration \
                                 with `ig-lint: allow(atomic-ordering) -- <why Relaxed is sound>`"
                                ),
                            );
                        }
                    }
                    "store" => {
                        if escape.is_some_and(|caps| caps.contains(key.as_str())) {
                            fire(
                                out,
                                format!(
                                    "`Ordering::Relaxed` store to `{key}` publishes data across a \
                                 spawn boundary (`{key}` is in a worker closure's escape set) — \
                                 Relaxed does not publish prior writes; use `Release` (with \
                                 `Acquire` loads), or bless the field declaration with \
                                 `ig-lint: allow(atomic-ordering) -- <why Relaxed is sound>`"
                                ),
                            );
                        }
                    }
                    m if RMW_METHODS.contains(&m) => {
                        if !discarded.contains(method_tok) {
                            fire(
                                out,
                                format!(
                                "`Ordering::Relaxed` read-modify-write on `{key}` has its result \
                                 consumed — an RMW whose value is used is a synchronization \
                                 handshake, not a counter; if only uniqueness of the returned \
                                 value matters Relaxed is sound, but say so: bless the site or \
                                 the field declaration with `ig-lint: allow(atomic-ordering) -- \
                                 <reason>`"
                            ),
                            );
                        }
                    }
                    _ => {}
                }
            });
        }
    }
}
