//! Pixel statistics and normalization helpers.

use crate::GrayImage;

/// Summary statistics of an image's pixel distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageStats {
    /// Arithmetic mean.
    pub mean: f32,
    /// Population variance.
    pub variance: f32,
    /// Minimum pixel value.
    pub min: f32,
    /// Maximum pixel value.
    pub max: f32,
}

impl ImageStats {
    /// Population standard deviation.
    pub fn std(&self) -> f32 {
        self.variance.max(0.0).sqrt()
    }
}

/// Compute [`ImageStats`] in a single pass. Empty images return zeros.
pub fn stats(img: &GrayImage) -> ImageStats {
    if img.is_empty() {
        return ImageStats {
            mean: 0.0,
            variance: 0.0,
            min: 0.0,
            max: 0.0,
        };
    }
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &p in img.pixels() {
        sum += p as f64;
        sum_sq += (p as f64) * (p as f64);
        min = min.min(p);
        max = max.max(p);
    }
    let n = img.len() as f64;
    let mean = sum / n;
    let variance = (sum_sq / n - mean * mean).max(0.0);
    ImageStats {
        mean: mean as f32,
        variance: variance as f32,
        min,
        max,
    }
}

/// Linearly rescale pixel values so min → 0 and max → 1. Constant images
/// map to all-zeros.
pub fn normalize_minmax(img: &GrayImage) -> GrayImage {
    let s = stats(img);
    let range = s.max - s.min;
    if range <= f32::EPSILON {
        return GrayImage::new(img.width(), img.height());
    }
    img.map(|p| (p - s.min) / range)
}

/// Standardize to zero mean, unit variance. Constant images map to zeros.
pub fn standardize(img: &GrayImage) -> GrayImage {
    let s = stats(img);
    let std = s.std();
    if std <= f32::EPSILON {
        return GrayImage::new(img.width(), img.height());
    }
    img.map(|p| (p - s.mean) / std)
}

/// A fixed-bin histogram of pixel values over `[lo, hi]`; out-of-range
/// pixels clamp into the end bins.
pub fn histogram(img: &GrayImage, bins: usize, lo: f32, hi: f32) -> Vec<usize> {
    let bins = bins.max(1);
    let mut counts = vec![0usize; bins];
    let range = (hi - lo).max(f32::EPSILON);
    for &p in img.pixels() {
        let t = ((p - lo) / range * bins as f32) as isize;
        let idx = t.clamp(0, bins as isize - 1) as usize;
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant() {
        let img = GrayImage::filled(4, 4, 0.5);
        let s = stats(&img);
        assert_eq!(s.mean, 0.5);
        assert_eq!(s.variance, 0.0);
        assert_eq!((s.min, s.max), (0.5, 0.5));
    }

    #[test]
    fn stats_of_known_values() {
        let img = GrayImage::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]).unwrap();
        let s = stats(&img);
        assert!((s.mean - 1.5).abs() < 1e-6);
        assert!((s.variance - 1.25).abs() < 1e-6);
        assert_eq!((s.min, s.max), (0.0, 3.0));
    }

    #[test]
    fn stats_of_empty_image() {
        let img = GrayImage::new(0, 0);
        let s = stats(&img);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn normalize_minmax_hits_bounds() {
        let img = GrayImage::from_vec(3, 1, vec![2.0, 4.0, 6.0]).unwrap();
        let n = normalize_minmax(&img);
        assert_eq!(n.pixels(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn normalize_constant_is_zero() {
        let img = GrayImage::filled(3, 3, 9.0);
        let n = normalize_minmax(&img);
        assert!(n.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn standardize_produces_zero_mean_unit_std() {
        let img = GrayImage::from_fn(8, 8, |x, y| ((x * 31 + y * 17) % 13) as f32);
        let z = standardize(&img);
        let s = stats(&z);
        assert!(s.mean.abs() < 1e-5);
        assert!((s.std() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn histogram_counts_sum_to_pixels() {
        let img = GrayImage::from_fn(10, 10, |x, _| x as f32 / 10.0);
        let h = histogram(&img, 5, 0.0, 1.0);
        assert_eq!(h.iter().sum::<usize>(), 100);
        // Uniform across bins: each of the 5 bins gets 2 columns x 10 rows.
        assert!(h.iter().all(|&c| c == 20));
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let img = GrayImage::from_vec(3, 1, vec![-5.0, 0.5, 99.0]).unwrap();
        let h = histogram(&img, 2, 0.0, 1.0);
        // -5 clamps into bin 0; 0.5 lands exactly on the bin-1 boundary; 99
        // clamps into the last bin.
        assert_eq!(h, vec![1, 2]);
    }
}
