//! A Snorkel-style generative label model over abstaining labeling
//! functions, fit with one-coin EM.
//!
//! Snuba's final step "combine\[s\] the LFs into a generative model"; this
//! is that model. Each LF votes a class or abstains; the model learns a
//! per-LF accuracy and produces posterior class probabilities per sample
//! via accuracy-weighted voting, iterated EM-style.

/// An LF vote: `Some(class)` or `None` for abstain.
pub type Vote = Option<usize>;

/// The fitted generative model.
#[derive(Debug, Clone)]
pub struct LabelModel {
    /// Learned accuracy per LF in `[eps, 1-eps]`.
    pub accuracies: Vec<f64>,
    /// Class prior.
    pub priors: Vec<f64>,
    num_classes: usize,
}

impl LabelModel {
    /// Fit on a vote matrix: `votes[sample][lf]`. `iterations` EM rounds.
    pub fn fit(votes: &[Vec<Vote>], num_classes: usize, iterations: usize) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        let n = votes.len();
        let m = votes.first().map_or(0, |v| v.len());
        let mut accuracies = vec![0.7f64; m];
        let mut priors = vec![1.0 / num_classes as f64; num_classes];
        if n == 0 || m == 0 {
            return Self {
                accuracies,
                priors,
                num_classes,
            };
        }
        let mut posteriors = vec![vec![1.0 / num_classes as f64; num_classes]; n];
        for _ in 0..iterations.max(1) {
            // E-step: posterior per sample.
            for (i, sample_votes) in votes.iter().enumerate() {
                let mut logp: Vec<f64> = priors.iter().map(|&p| p.max(1e-9).ln()).collect();
                for (j, vote) in sample_votes.iter().enumerate() {
                    if let Some(v) = vote {
                        let acc = accuracies[j].clamp(0.05, 0.95);
                        for (c, lp) in logp.iter_mut().enumerate() {
                            if c == *v {
                                *lp += acc.ln();
                            } else {
                                *lp += ((1.0 - acc) / (num_classes as f64 - 1.0)).ln();
                            }
                        }
                    }
                }
                let max = logp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
                let mut sum = 0.0;
                for lp in &mut logp {
                    *lp = (*lp - max).exp();
                    sum += *lp;
                }
                for (p, lp) in posteriors[i].iter_mut().zip(&logp) {
                    *p = lp / sum;
                }
            }
            // M-step: accuracies and priors.
            for j in 0..m {
                let mut agree = 0.0f64;
                let mut total = 0.0f64;
                for (i, sample_votes) in votes.iter().enumerate() {
                    if let Some(v) = sample_votes[j] {
                        agree += posteriors[i][v];
                        total += 1.0;
                    }
                }
                if total > 0.0 {
                    accuracies[j] = (agree / total).clamp(0.05, 0.95);
                }
            }
            for c in 0..num_classes {
                priors[c] = posteriors.iter().map(|p| p[c]).sum::<f64>() / n as f64;
            }
        }
        Self {
            accuracies,
            priors,
            num_classes,
        }
    }

    /// Posterior class probabilities for one sample's votes.
    pub fn posterior(&self, sample_votes: &[Vote]) -> Vec<f64> {
        let mut logp: Vec<f64> = self.priors.iter().map(|&p| p.max(1e-9).ln()).collect();
        for (j, vote) in sample_votes.iter().enumerate() {
            if let Some(v) = vote {
                let acc = self
                    .accuracies
                    .get(j)
                    .copied()
                    .unwrap_or(0.7)
                    .clamp(0.05, 0.95);
                for (c, lp) in logp.iter_mut().enumerate() {
                    if c == *v {
                        *lp += acc.ln();
                    } else {
                        *lp += ((1.0 - acc) / (self.num_classes as f64 - 1.0)).ln();
                    }
                }
            }
        }
        let max = logp.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for lp in &mut logp {
            *lp = (*lp - max).exp();
            sum += *lp;
        }
        logp.into_iter().map(|p| p / sum).collect()
    }

    /// Hard label (argmax posterior, first index on ties). Samples where
    /// every LF abstained fall back to the prior's argmax.
    pub fn predict(&self, sample_votes: &[Vote]) -> usize {
        let posterior = self.posterior(sample_votes);
        let mut best = 0usize;
        for (c, &p) in posterior.iter().enumerate().skip(1) {
            if p > posterior[best] {
                best = c;
            }
        }
        best
    }

    /// Hard labels for a batch.
    pub fn predict_all(&self, votes: &[Vec<Vote>]) -> Vec<usize> {
        votes.iter().map(|v| self.predict(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three LFs: two accurate, one adversarial, binary task.
    fn synthetic_votes(n: usize) -> (Vec<Vec<Vote>>, Vec<usize>) {
        let mut votes = Vec::new();
        let mut gold = Vec::new();
        for i in 0..n {
            let y = i % 2;
            let good1 = if i % 10 < 9 { y } else { 1 - y }; // 90% accurate
            let good2 = if i % 10 < 8 { y } else { 1 - y }; // 80% accurate
            let bad = 1 - y; // 0% accurate (systematically inverted)
            votes.push(vec![Some(good1), Some(good2), Some(bad)]);
            gold.push(y);
        }
        (votes, gold)
    }

    #[test]
    fn em_learns_lf_accuracies() {
        let (votes, _) = synthetic_votes(200);
        let model = LabelModel::fit(&votes, 2, 20);
        assert!(
            model.accuracies[0] > model.accuracies[2],
            "good LF {} vs bad LF {}",
            model.accuracies[0],
            model.accuracies[2]
        );
        assert!(model.accuracies[0] > 0.7);
        assert!(model.accuracies[2] < 0.3);
    }

    #[test]
    fn predictions_beat_majority_vote_with_adversarial_lf() {
        let (votes, gold) = synthetic_votes(200);
        let model = LabelModel::fit(&votes, 2, 20);
        let preds = model.predict_all(&votes);
        let correct = preds.iter().zip(&gold).filter(|(a, b)| a == b).count();
        assert!(correct >= 170, "{correct}/200 correct");
    }

    #[test]
    fn abstains_fall_back_to_prior() {
        // Skewed dataset: 80% class 0.
        let votes: Vec<Vec<Vote>> = (0..100)
            .map(|i| if i < 80 { vec![Some(0)] } else { vec![Some(1)] })
            .collect();
        let model = LabelModel::fit(&votes, 2, 10);
        assert_eq!(model.predict(&[None]), 0);
        let p = model.posterior(&[None]);
        assert!(p[0] > 0.6);
    }

    #[test]
    fn empty_fit_is_safe() {
        let model = LabelModel::fit(&[], 2, 5);
        assert_eq!(model.predict(&[]), 0);
    }

    #[test]
    fn multiclass_votes() {
        let votes: Vec<Vec<Vote>> = (0..90)
            .map(|i| {
                let y = i % 3;
                vec![Some(y), Some(y), if i % 5 == 0 { None } else { Some(y) }]
            })
            .collect();
        let model = LabelModel::fit(&votes, 3, 10);
        let preds = model.predict_all(&votes);
        for (i, p) in preds.iter().enumerate() {
            assert_eq!(*p, i % 3);
        }
    }

    #[test]
    fn posterior_sums_to_one() {
        let (votes, _) = synthetic_votes(50);
        let model = LabelModel::fit(&votes, 2, 10);
        for v in &votes {
            let p = model.posterior(v);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }
}
