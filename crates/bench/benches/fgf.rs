//! Ablation bench: feature generation (the FGF bank) serial vs parallel,
//! throughput vs pattern count, and the batched matching engine against
//! the per-call matchers — the pipeline's hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ig_bench::{defect_pattern, image_batch, textured_image};
use ig_core::{FeatureGenerator, Pattern, PatternSource};
use ig_imaging::ncc::{score_map, PyramidMatchConfig};
use ig_imaging::{
    match_template_pyramid, score_map_prepared, GrayImage, PreparedImage, PreparedPattern,
};

fn make_generator(num_patterns: usize) -> FeatureGenerator {
    let patterns: Vec<GrayImage> = (0..num_patterns)
        .map(|i| defect_pattern(10 + (i % 4), i as u64))
        .collect();
    FeatureGenerator::new(Pattern::wrap_all(patterns, PatternSource::Crowd))
        .expect("nonempty pattern bank")
}

fn bench_pattern_count(c: &mut Criterion) {
    let images = image_batch(8, 160, 40, 3);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let mut group = c.benchmark_group("fgf_pattern_count");
    for num_patterns in [4usize, 16, 64] {
        let fg = make_generator(num_patterns).with_threads(1);
        group.throughput(Throughput::Elements((refs.len() * num_patterns) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(num_patterns),
            &num_patterns,
            |b, _| b.iter(|| fg.feature_matrix(&refs)),
        );
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let images = image_batch(16, 160, 40, 5);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let mut group = c.benchmark_group("fgf_threads");
    for threads in [1usize, 2, 4] {
        let fg = make_generator(16).with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| fg.feature_matrix(&refs))
        });
    }
    group.finish();
}

/// The satellite measurement for the batched engine: a 32-image ×
/// 16-pattern feature matrix, per-call matchers (every cell rebuilds the
/// image pyramid + integral tables and re-reduces the pattern) vs the
/// prepared engine (caches built once, work-stealing cell scheduling).
fn bench_batch_engine(c: &mut Criterion) {
    let images = image_batch(32, 160, 40, 7);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let patterns: Vec<GrayImage> = (0..16)
        .map(|i| defect_pattern(10 + (i % 4), i as u64))
        .collect();
    let config = PyramidMatchConfig::default();
    let mut group = c.benchmark_group("fgf_batch_32x16");
    group.sample_size(10);
    group.bench_function("per_call", |b| {
        b.iter(|| {
            let mut acc = 0.0f32;
            for img in &refs {
                for pat in &patterns {
                    acc += match_template_pyramid(img, pat, &config)
                        .map(|m| m.score)
                        .unwrap_or(0.0);
                }
            }
            acc
        })
    });
    let serial = FeatureGenerator::new(Pattern::wrap_all(patterns.clone(), PatternSource::Crowd))
        .expect("nonempty pattern bank")
        .with_threads(1);
    group.bench_function("prepared_serial", |b| {
        b.iter(|| serial.feature_matrix(&refs))
    });
    let prepped = serial.prepare_images(&refs);
    group.bench_function("prepared_images_serial", |b| {
        b.iter(|| serial.feature_matrix_prepared(&prepped))
    });
    let threaded = FeatureGenerator::new(Pattern::wrap_all(patterns, PatternSource::Crowd))
        .expect("nonempty pattern bank")
        .with_threads(4);
    group.bench_function("prepared_threads4", |b| {
        b.iter(|| threaded.feature_matrix(&refs))
    });
    group.finish();
}

/// PR 9's large-pattern arm: a dense 64×64-pattern score map over a
/// 256×192 frame, where the planner routes the prepared path onto the FFT
/// correlation (pattern area 4096 ≫ the ~512 crossover for these image
/// dims) while the per-call map stays on the exact row sweep. The
/// prepared arm reuses cached spectra — the steady-state shape for
/// repeated scoring against a fixed reference set.
fn bench_large_pattern(c: &mut Criterion) {
    let img = textured_image(256, 192, 11);
    let pat = img.crop(40, 30, 64, 64).expect("crop inside frame");
    let config = PyramidMatchConfig::default();
    let mut group = c.benchmark_group("fgf_large_pattern");
    group.sample_size(10);
    group.bench_function("brute_sweep", |b| {
        b.iter(|| score_map(&img, &pat).map(|m| m.get(0, 0)).unwrap_or(0.0))
    });
    let prepared_img = PreparedImage::new(&img, &config);
    let prepared_pat = PreparedPattern::new(&pat, &config).expect("nonempty pattern");
    group.bench_function("fft_prepared", |b| {
        b.iter(|| {
            score_map_prepared(&prepared_img, &prepared_pat)
                .map(|m| m.get(0, 0))
                .unwrap_or(0.0)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pattern_count,
    bench_parallelism,
    bench_batch_engine,
    bench_large_pattern
);
criterion_main!(benches);
