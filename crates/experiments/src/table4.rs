//! Table 4: pattern augmentation ablation — crowd patterns only vs
//! policy-based vs GAN-based vs both, per dataset.

use crate::common::{all_kinds, run_inspector_gadget, ExpEnv, Prepared, Report};
use ig_augment::AugmentMethod;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    no_aug: f64,
    policy: f64,
    gan: f64,
    both: f64,
}

/// Run the Table 4 reproduction.
pub fn run(env: &ExpEnv) {
    let seed = env.seed();
    let mut report = Report::new("table4", &env.out);
    report.line(format!(
        "Table 4 (reproduction, scale={}): augmentation impact on weak-label F1",
        env.scale().name()
    ));
    report.line(format!(
        "{:<22} {:>9} {:>13} {:>11} {:>11}",
        "Dataset", "No Aug.", "Policy Based", "GAN Based", "Using Both"
    ));
    let budget = env.scale().augment_budget;
    let mut rows = Vec::new();
    for kind in all_kinds() {
        let prepared = Prepared::new(&env.ctx, kind);
        let dev = prepared.dev_images();
        let mut scores = [0.0f64; 4];
        for (i, method) in AugmentMethod::all().into_iter().enumerate() {
            scores[i] =
                run_inspector_gadget(&env.ctx, &prepared, &dev, method, budget, false, kind, seed)
                    .map(|r| r.f1)
                    .unwrap_or(0.0);
        }
        report.line(format!(
            "{:<22} {:>9.3} {:>13.3} {:>11.3} {:>11.3}",
            kind.display_name(),
            scores[0],
            scores[1],
            scores[2],
            scores[3]
        ));
        rows.push(Row {
            dataset: kind.display_name().to_string(),
            no_aug: scores[0],
            policy: scores[1],
            gan: scores[2],
            both: scores[3],
        });
    }
    let aug_helps = rows
        .iter()
        .filter(|r| r.both.max(r.policy).max(r.gan) >= r.no_aug)
        .count();
    report.line(format!(
        "Augmentation helps (best arm ≥ no-aug) on {aug_helps}/{} datasets \
         (paper: augmentation lifts every dataset; 'both' usually best)",
        rows.len()
    ));
    report.finish(&rows);
}
