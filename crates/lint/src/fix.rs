//! Mechanical rewrites for the safe subset of E1 findings.
//!
//! `ig-lint fix` plans byte-level edits for discard patterns whose rewrite
//! is provably behavior-preserving-or-better:
//!
//! - `let _ = <Result call>;` inside a `Result` function → `<call>?;`
//! - `let _ = <Result call>;` elsewhere → a logged `if let Err` template
//! - statement-level `<Result call>.ok();` → same two templates
//! - discarded join results (`let _ = h.join();`, `h.join();`,
//!   `h.join().ok();`) → a logged `if let Err` template that surfaces the
//!   panic payload. Never `?`: a `JoinHandle`'s `Err` is `Box<dyn Any>`,
//!   which no `From` impl can propagate.
//!
//! Only *provably `Result`-producing* initializers are rewritten (see
//! [`is_result_call`]): a `?` on an `Option` in a `Result` fn would not
//! compile, and strict-scope "any discarded call" findings stay manual.
//! Edits are applied bottom-up so earlier offsets stay valid, and the
//! contract is round-trip: apply → re-check → the rewritten sites are
//! clean.

use crate::ast::{self, walk_stmts, Expr, ExprKind, LetPat, ReturnKind, Stmt};
use crate::context::{classify, test_mask, FileClass};
use crate::dataflow::{chain_is_handled, is_result_call};
use crate::lexer::{lex, Token};

/// One planned byte-range replacement.
#[derive(Debug, Clone)]
pub struct FixEdit {
    /// Byte range in the original source to replace.
    pub start: usize,
    pub end: usize,
    pub replacement: String,
    /// Line of the rewritten statement, for the summary.
    pub line: u32,
    /// Human-readable description of the rewrite.
    pub note: String,
}

/// Byte offset one past the end of token `i`.
fn token_end(toks: &[Token], i: usize) -> Option<usize> {
    toks.get(i).map(|t| t.start + t.text.len())
}

/// Source slice covered by an expression.
fn expr_src<'s>(src: &'s str, toks: &[Token], e: &Expr) -> Option<&'s str> {
    let start = toks.get(e.span.lo)?.start;
    let end = token_end(toks, e.span.hi.checked_sub(1)?)?;
    src.get(start..end)
}

/// If `e` is a no-arg `.join()` chain — possibly wrapped in trailing
/// `.ok()` layers — return the subexpression ending at the `join` call
/// (the value the rewrite keeps) and the `join` token. The no-arg guard
/// keeps separator joins (`Vec<String>::join(", ")`) out of scope.
fn join_value(e: &Expr) -> Option<(&Expr, usize)> {
    let ExprKind::MethodCall {
        method,
        method_tok,
        recv,
        args,
    } = &e.kind
    else {
        return None;
    };
    if !args.is_empty() {
        return None;
    }
    match method.as_str() {
        "join" => Some((e, *method_tok)),
        "ok" => join_value(recv.as_ref()),
        _ => None,
    }
}

/// Plan the safe-subset rewrites for one file. `class` follows
/// [`classify`] unless pinned by the caller (fixture tests pin Library).
pub fn plan_fixes(rel_path: &str, src: &str, class: Option<FileClass>) -> Vec<FixEdit> {
    let class = class.unwrap_or_else(|| classify(rel_path));
    if class != FileClass::Library {
        return Vec::new();
    }
    let lexed = lex(src);
    let mask = test_mask(&lexed);
    let toks = &lexed.tokens;
    let parsed = ast::parse(toks);
    let sigs = parsed.signatures();
    let governed = |i: usize| !mask.get(i).copied().unwrap_or(false);

    let mut edits: Vec<FixEdit> = Vec::new();
    for f in &parsed.fns {
        if !governed(f.name_tok) {
            continue;
        }
        let in_result_fn = f.returns == ReturnKind::Result;
        walk_stmts(&f.body, &mut |s: &Stmt| {
            let (stmt_span, value, line_tok, is_join) = match s {
                Stmt::Let(l) => {
                    let (LetPat::Wild(tok), Some(init)) = (&l.pat, &l.init) else {
                        return;
                    };
                    if !governed(*tok) {
                        return;
                    }
                    match join_value(init) {
                        Some((v, _)) => (l.span, v, *tok, true),
                        None => (l.span, init, *tok, false),
                    }
                }
                Stmt::Expr(es) if es.has_semi => {
                    if let Some((v, jt)) = join_value(&es.expr) {
                        if !governed(jt) {
                            return;
                        }
                        (es.span, v, jt, true)
                    } else {
                        let ExprKind::MethodCall {
                            method,
                            method_tok,
                            recv,
                            ..
                        } = &es.expr.kind
                        else {
                            return;
                        };
                        if method != "ok" || !governed(*method_tok) {
                            return;
                        }
                        (es.span, recv.as_ref(), *method_tok, false)
                    }
                }
                _ => return,
            };
            if !is_join && (!is_result_call(value, &sigs) || chain_is_handled(value)) {
                return;
            }
            let Some(value_src) = expr_src(src, toks, value) else {
                return;
            };
            let Some(start) = toks.get(stmt_span.lo).map(|t| t.start) else {
                return;
            };
            let Some(end) = stmt_span.hi.checked_sub(1).and_then(|i| token_end(toks, i)) else {
                return;
            };
            let line = toks.get(line_tok).map_or(0, |t| t.line);
            let (replacement, note) = if is_join {
                let col = toks.get(stmt_span.lo).map_or(1, |t| t.col) as usize;
                let pad = " ".repeat(col.saturating_sub(1));
                (
                    format!(
                        "if let Err(e) = {value_src} {{\n{pad}    \
                         eprintln!(\"worker thread panicked: {{e:?}}\");\n{pad}}}"
                    ),
                    "surface the panic payload (a JoinHandle error cannot use `?`)".to_string(),
                )
            } else if in_result_fn {
                (
                    format!("{value_src}?;"),
                    "propagate with `?` (enclosing fn returns Result)".to_string(),
                )
            } else {
                // Indent the template body to the statement's column.
                let col = toks.get(stmt_span.lo).map_or(1, |t| t.col) as usize;
                let pad = " ".repeat(col.saturating_sub(1));
                (
                    format!(
                        "if let Err(e) = {value_src} {{\n{pad}    \
                         eprintln!(\"ignored error: {{e:?}}\");\n{pad}}}"
                    ),
                    "log the error (enclosing fn cannot propagate)".to_string(),
                )
            };
            edits.push(FixEdit {
                start,
                end,
                replacement,
                line,
                note,
            });
        });
    }
    // Bottom-up application order; drop any overlap defensively (cannot
    // happen for disjoint statements, but a parse hiccup must not corrupt
    // the file).
    edits.sort_by_key(|e| std::cmp::Reverse(e.start));
    edits.dedup_by(|a, b| a.start < b.end && b.start < a.end);
    edits
}

/// Apply planned edits (must be sorted descending by `start`, as
/// [`plan_fixes`] returns them).
pub fn apply_fixes(src: &str, edits: &[FixEdit]) -> String {
    let mut out = src.to_string();
    for e in edits {
        if e.start <= e.end && e.end <= out.len() {
            out.replace_range(e.start..e.end, &e.replacement);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const PATH: &str = "crates/core/src/fixture.rs";

    #[test]
    fn let_wild_in_result_fn_becomes_try() {
        let src = "fn save() -> Result<(), E> { Ok(()) }\n\
                   fn run() -> Result<(), E> {\n    let _ = save();\n    Ok(())\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert_eq!(edits.len(), 1);
        let fixed = apply_fixes(src, &edits);
        assert!(fixed.contains("save()?;"), "fixed:\n{fixed}");
        assert!(!fixed.contains("let _ = save()"));
    }

    #[test]
    fn let_wild_in_unit_fn_becomes_logged_match() {
        let src = "fn save() -> Result<(), E> { Ok(()) }\n\
                   fn run() {\n    let _ = save();\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert_eq!(edits.len(), 1);
        let fixed = apply_fixes(src, &edits);
        assert!(fixed.contains("if let Err(e) = save()"), "fixed:\n{fixed}");
        assert!(fixed.contains("eprintln!"));
    }

    #[test]
    fn statement_ok_is_rewritten() {
        let src = "fn save() -> Result<(), E> { Ok(()) }\n\
                   fn run() -> Result<(), E> {\n    save().ok();\n    Ok(())\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert_eq!(edits.len(), 1);
        let fixed = apply_fixes(src, &edits);
        assert!(fixed.contains("save()?;"), "fixed:\n{fixed}");
        assert!(!fixed.contains(".ok()"));
    }

    #[test]
    fn option_returning_calls_are_left_alone() {
        let src = "fn find() -> Option<u8> { None }\n\
                   fn run() -> Result<(), E> {\n    let _ = find();\n    Ok(())\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert!(edits.is_empty(), "Option discard must stay manual");
    }

    #[test]
    fn handled_chains_are_left_alone() {
        let src = "fn save() -> Result<(), E> { Ok(()) }\n\
                   fn run() {\n    let _ = save().map_err(|e| log(e));\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert!(edits.is_empty());
    }

    #[test]
    fn discarded_join_is_logged_even_in_result_fn() {
        // `?` never applies to a JoinHandle (Err is Box<dyn Any>), so the
        // rewrite stays the logged form inside Result functions too.
        let src = "fn run() -> Result<(), E> {\n    let h = std::thread::spawn(|| 1);\n    \
                   let _ = h.join();\n    Ok(())\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert_eq!(edits.len(), 1);
        let fixed = apply_fixes(src, &edits);
        assert!(
            fixed.contains("if let Err(e) = h.join()"),
            "fixed:\n{fixed}"
        );
        assert!(fixed.contains("worker thread panicked"));
        assert!(!fixed.contains("h.join()?"));
    }

    #[test]
    fn statement_join_ok_drops_the_ok_layer() {
        let src = "fn run() {\n    let h = std::thread::spawn(|| 1);\n    h.join().ok();\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert_eq!(edits.len(), 1);
        let fixed = apply_fixes(src, &edits);
        assert!(
            fixed.contains("if let Err(e) = h.join() {"),
            "fixed:\n{fixed}"
        );
        assert!(!fixed.contains(".ok()"));
    }

    #[test]
    fn separator_join_is_left_alone() {
        // `slice::join(sep)` takes an argument; only no-arg joins are
        // JoinHandle joins.
        let src = "fn run() {\n    let parts = vec![String::new()];\n    \
                   let _ = parts.join(\", \");\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert!(edits.is_empty(), "edits: {edits:#?}");
    }

    #[test]
    fn test_code_is_left_alone() {
        let src = "fn save() -> Result<(), E> { Ok(()) }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { let _ = super::save(); }\n}\n";
        let edits = plan_fixes(PATH, src, Some(FileClass::Library));
        assert!(edits.is_empty());
    }
}
