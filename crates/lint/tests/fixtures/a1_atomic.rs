//! A1 fixture: Relaxed gates, cross-spawn publications, and consumed
//! RMWs fire; statement counters and blessed fields stay silent.
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct Counters {
    hits: AtomicU64,
    // ig-lint: allow(atomic-ordering) -- ticket counter: only uniqueness
    // of the returned stamp matters, no memory is published through it
    clock: AtomicU64,
    ready: AtomicBool,
}

impl Counters {
    pub fn gate_direct(&self, flag: &AtomicBool) {
        if flag.load(Ordering::Relaxed) {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
    }

    pub fn gate_one_hop(&self) -> u64 {
        let ready = self.ready.load(Ordering::Relaxed);
        if ready {
            1
        } else {
            0
        }
    }

    pub fn consumed_rmw(&self, counter: &AtomicU64) -> u64 {
        counter.fetch_add(1, Ordering::Relaxed)
    }

    pub fn blessed_rmw(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }
}

pub fn publish(flag: &'static AtomicBool) {
    let _bg = std::thread::spawn(move || {
        while !flag.load(Ordering::Acquire) {}
    });
    flag.store(true, Ordering::Relaxed);
}

pub fn acquire_release(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
    if flag.load(Ordering::Acquire) {
        flag.store(false, Ordering::Release);
    }
}
