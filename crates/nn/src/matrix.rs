//! A minimal dense `f32` matrix. Row-major; shaped as `rows x cols`.
//!
//! Batches are laid out as `batch_size x features`, weights as
//! `in_features x out_features`, so a forward pass is a plain `x.matmul(w)`.

use rand::Rng;

/// Dense row-major `f32` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Wrap a row-major buffer. Panics when the length does not match.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix buffer length mismatch");
        Self { rows, cols, data }
    }

    /// A single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Stack row vectors into a matrix. Panics on ragged input.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let Some(first) = rows.first() else {
            return Self::zeros(0, 0);
        };
        let cols = first.len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Glorot/Xavier-uniform initialization, the paper-era default for
    /// sigmoid/tanh MLPs.
    pub fn xavier(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (rows + cols) as f32).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
    }

    /// He-uniform initialization for ReLU networks.
    pub fn he(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / rows as f32).sqrt();
        Self::from_fn(rows, cols, |_, _| rng.gen_range(-limit..=limit))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Approximate heap footprint of the element buffer, in bytes. Used
    /// by the out-of-core shard budgeter to size feature-matrix shards.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }

    /// Element count.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self * other` (`rows x cols` · `cols x k` → `rows x k`).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop sequential over both the
        // output row and the `other` row — cache-friendly without tiling.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                // ig-lint: allow(float-eq) -- sparsity fast path: skipping
                // exactly-zero entries is sound for any value
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self^T * other` without materializing the transpose.
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                // ig-lint: allow(float-eq) -- sparsity fast path: skipping
                // exactly-zero entries is sound for any value
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self * other^T` without materializing the transpose.
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0f32;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self.get(c, r))
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Elementwise product (Hadamard) into a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Add a row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (v, &b) in self.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
    }

    /// Column sums (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut sums = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|&v| v * v).sum::<f32>().sqrt()
    }

    /// Select a subset of rows by index (clones the data).
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let eye = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&eye), a);
        assert_eq!(eye.matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Matrix::xavier(4, 3, &mut rng);
        let b = Matrix::xavier(4, 5, &mut rng);
        let fast = a.matmul_tn(&b);
        let slow = a.transpose().matmul(&b);
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Matrix::xavier(3, 4, &mut rng);
        let b = Matrix::xavier(5, 4, &mut rng);
        let fast = a.matmul_nt(&b);
        let slow = a.matmul(&b.transpose());
        for (x, y) in fast.as_slice().iter().zip(slow.as_slice()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_row_broadcast() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(a.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(a.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn col_sums_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn hadamard_and_axpy() {
        let a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(a.hadamard(&b).as_slice(), &[4.0, 10.0, 18.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b);
        assert_eq!(c.as_slice(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    fn xavier_init_within_limit() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = Matrix::xavier(10, 20, &mut rng);
        let limit = (6.0f32 / 30.0).sqrt();
        for &v in w.as_slice() {
            assert!(v.abs() <= limit + 1e-6);
        }
        // Not all identical.
        assert!(w.as_slice().iter().any(|&v| v != w.get(0, 0)));
    }

    #[test]
    fn select_rows_clones_in_order() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let s = a.select_rows(&[3, 0]);
        assert_eq!(s.row(0), &[6.0, 7.0]);
        assert_eq!(s.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn from_rows_stacks() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = Matrix::from_vec(1, 2, vec![3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }
}
