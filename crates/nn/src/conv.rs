//! Small convolutional networks with manual backpropagation.
//!
//! These power the paper's self-learning and transfer-learning baselines
//! and end models (VGG-19, MobileNetV2, ResNet50 — Section 6.1), scaled to
//! CPU as MiniVGG / MiniMobileNet / MiniResNet in `ig-baselines`. The
//! building blocks here are generic: standard and depthwise convolutions,
//! 2x2 max pooling, global average pooling, residual wrappers and a dense
//! head, each carrying its own Adam state.
//!
//! Tensors are NCHW `f32`. Shapes are validated at layer boundaries with
//! panics (programmer errors), not `Result`s.

use crate::activation::softmax_rows;
use crate::matrix::Matrix;
use crate::optim::Adam;
use rand::Rng;

/// A dense NCHW tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor4 {
    /// Batch size.
    pub n: usize,
    /// Channels.
    pub c: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    data: Vec<f32>,
}

impl Tensor4 {
    /// Zero tensor.
    pub fn zeros(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self {
            n,
            c,
            h,
            w,
            data: vec![0.0; n * c * h * w],
        }
    }

    /// Wrap a buffer; panics when the length mismatches.
    pub fn from_vec(n: usize, c: usize, h: usize, w: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), n * c * h * w, "tensor buffer length mismatch");
        Self { n, c, h, w, data }
    }

    /// Flat element index of `(n, c, y, x)`.
    #[inline]
    pub fn idx(&self, n: usize, c: usize, y: usize, x: usize) -> usize {
        ((n * self.c + c) * self.h + y) * self.w + x
    }

    /// Element access.
    #[inline]
    pub fn get(&self, n: usize, c: usize, y: usize, x: usize) -> f32 {
        self.data[self.idx(n, c, y, x)]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, y: usize, x: usize, v: f32) {
        let i = self.idx(n, c, y, x);
        self.data[i] = v;
    }

    /// Raw buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Channel-spatial shape `(c, h, w)`.
    pub fn chw(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    /// View batch as a `(n, c*h*w)` matrix (clones the data).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.n, self.c * self.h * self.w, self.data.clone())
    }
}

/// Parameter block with Adam state shared by all parametric layers.
#[derive(Debug, Clone)]
struct Param {
    value: Vec<f32>,
    grad: Vec<f32>,
    adam: Adam,
}

impl Param {
    fn new(value: Vec<f32>, lr: f32) -> Self {
        let len = value.len();
        Self {
            value,
            grad: vec![0.0; len],
            adam: Adam::new(lr),
        }
    }

    fn step(&mut self) {
        self.adam.step(&mut self.value, &self.grad);
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// A network layer with training state.
pub trait Layer: std::fmt::Debug {
    /// Forward pass; `train` retains caches needed by `backward`.
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4;
    /// Backward pass given the output gradient; returns the input gradient
    /// and accumulates parameter gradients internally.
    fn backward(&mut self, dy: &Tensor4) -> Tensor4;
    /// Apply one Adam step to the layer's parameters (if any) and clear
    /// the accumulated gradients.
    fn update(&mut self);
    /// Output `(c, h, w)` for a given input shape.
    fn out_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize);
}

/// Standard 2-D convolution with square kernels.
#[derive(Debug)]
pub struct Conv2d {
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    // Weights laid out [out_c][in_c][k][k].
    weights: Param,
    bias: Param,
    cache: Option<Tensor4>,
}

impl Conv2d {
    /// He-initialized convolution.
    pub fn new(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let fan_in = (in_c * k * k) as f32;
        let limit = (6.0 / fan_in).sqrt();
        let weights: Vec<f32> = (0..out_c * in_c * k * k)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Self {
            in_c,
            out_c,
            k,
            stride,
            pad,
            weights: Param::new(weights, lr),
            bias: Param::new(vec![0.0; out_c], lr),
            cache: None,
        }
    }

    #[inline]
    fn widx(&self, oc: usize, ic: usize, ky: usize, kx: usize) -> usize {
        ((oc * self.in_c + ic) * self.k + ky) * self.k + kx
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        assert_eq!(x.c, self.in_c, "conv input channel mismatch");
        let (oh, ow) = self.out_hw(x.h, x.w);
        let mut out = Tensor4::zeros(x.n, self.out_c, oh, ow);
        for n in 0..x.n {
            for oc in 0..self.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias.value[oc];
                        for ic in 0..self.in_c {
                            for ky in 0..self.k {
                                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                if iy < 0 || iy >= x.h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                    if ix < 0 || ix >= x.w as isize {
                                        continue;
                                    }
                                    acc += self.weights.value[self.widx(oc, ic, ky, kx)]
                                        * x.get(n, ic, iy as usize, ix as usize);
                                }
                            }
                        }
                        out.set(n, oc, oy, ox, acc);
                    }
                }
            }
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, dy: &Tensor4) -> Tensor4 {
        // ig-lint: allow(panic) -- Layer contract: backward is only called
        // after forward(train=true), which populates the cache
        let x = self.cache.as_ref().expect("backward before forward(train)");
        let mut dx = Tensor4::zeros(x.n, x.c, x.h, x.w);
        for n in 0..x.n {
            for oc in 0..self.out_c {
                for oy in 0..dy.h {
                    for ox in 0..dy.w {
                        let g = dy.get(n, oc, oy, ox);
                        // ig-lint: allow(float-eq) -- sparsity fast path:
                        // skipping exactly-zero gradients is sound for any value
                        if g == 0.0 {
                            continue;
                        }
                        self.bias.grad[oc] += g;
                        for ic in 0..self.in_c {
                            for ky in 0..self.k {
                                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                if iy < 0 || iy >= x.h as isize {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                    if ix < 0 || ix >= x.w as isize {
                                        continue;
                                    }
                                    let xi = x.get(n, ic, iy as usize, ix as usize);
                                    let wi = self.widx(oc, ic, ky, kx);
                                    self.weights.grad[wi] += g * xi;
                                    let di = dx.idx(n, ic, iy as usize, ix as usize);
                                    dx.as_mut_slice()[di] += g * self.weights.value[wi];
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn update(&mut self) {
        self.weights.step();
        self.bias.step();
    }

    fn out_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        let (_, h, w) = input;
        let (oh, ow) = self.out_hw(h, w);
        (self.out_c, oh, ow)
    }
}

/// Depthwise 3x3-style convolution: one kernel per channel (the core of
/// MobileNet's depthwise-separable blocks).
#[derive(Debug)]
pub struct DepthwiseConv2d {
    channels: usize,
    k: usize,
    stride: usize,
    pad: usize,
    weights: Param, // [channels][k][k]
    bias: Param,
    cache: Option<Tensor4>,
}

impl DepthwiseConv2d {
    /// He-initialized depthwise convolution.
    pub fn new(
        channels: usize,
        k: usize,
        stride: usize,
        pad: usize,
        lr: f32,
        rng: &mut impl Rng,
    ) -> Self {
        let limit = (6.0 / (k * k) as f32).sqrt();
        let weights: Vec<f32> = (0..channels * k * k)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Self {
            channels,
            k,
            stride,
            pad,
            weights: Param::new(weights, lr),
            bias: Param::new(vec![0.0; channels], lr),
            cache: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

impl Layer for DepthwiseConv2d {
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        assert_eq!(x.c, self.channels, "depthwise channel mismatch");
        let (oh, ow) = self.out_hw(x.h, x.w);
        let mut out = Tensor4::zeros(x.n, x.c, oh, ow);
        for n in 0..x.n {
            for c in 0..x.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = self.bias.value[c];
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= x.h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= x.w as isize {
                                    continue;
                                }
                                acc += self.weights.value[(c * self.k + ky) * self.k + kx]
                                    * x.get(n, c, iy as usize, ix as usize);
                            }
                        }
                        out.set(n, c, oy, ox, acc);
                    }
                }
            }
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, dy: &Tensor4) -> Tensor4 {
        // ig-lint: allow(panic) -- Layer contract: backward is only called
        // after forward(train=true), which populates the cache
        let x = self.cache.as_ref().expect("backward before forward(train)");
        let mut dx = Tensor4::zeros(x.n, x.c, x.h, x.w);
        for n in 0..x.n {
            for c in 0..x.c {
                for oy in 0..dy.h {
                    for ox in 0..dy.w {
                        let g = dy.get(n, c, oy, ox);
                        // ig-lint: allow(float-eq) -- sparsity fast path:
                        // skipping exactly-zero gradients is sound for any value
                        if g == 0.0 {
                            continue;
                        }
                        self.bias.grad[c] += g;
                        for ky in 0..self.k {
                            let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                            if iy < 0 || iy >= x.h as isize {
                                continue;
                            }
                            for kx in 0..self.k {
                                let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                if ix < 0 || ix >= x.w as isize {
                                    continue;
                                }
                                let wi = (c * self.k + ky) * self.k + kx;
                                self.weights.grad[wi] += g * x.get(n, c, iy as usize, ix as usize);
                                let di = dx.idx(n, c, iy as usize, ix as usize);
                                dx.as_mut_slice()[di] += g * self.weights.value[wi];
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn update(&mut self) {
        self.weights.step();
        self.bias.step();
    }

    fn out_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        let (c, h, w) = input;
        let (oh, ow) = self.out_hw(h, w);
        (c, oh, ow)
    }
}

/// Elementwise ReLU.
#[derive(Debug)]
pub struct ReluLayer {
    mask: Option<Vec<bool>>,
}

impl ReluLayer {
    /// New ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Default for ReluLayer {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for ReluLayer {
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let mut out = x.clone();
        let mut mask = if train {
            Vec::with_capacity(x.as_slice().len())
        } else {
            Vec::new()
        };
        for v in out.as_mut_slice() {
            let pos = *v > 0.0;
            if train {
                mask.push(pos);
            }
            if !pos {
                *v = 0.0;
            }
        }
        if train {
            self.mask = Some(mask);
        }
        out
    }

    fn backward(&mut self, dy: &Tensor4) -> Tensor4 {
        // ig-lint: allow(panic) -- Layer contract: backward follows
        // forward(train=true), which stores the dropout mask
        let mask = self.mask.as_ref().expect("backward before forward(train)");
        let mut dx = dy.clone();
        for (v, &keep) in dx.as_mut_slice().iter_mut().zip(mask) {
            if !keep {
                *v = 0.0;
            }
        }
        dx
    }

    fn update(&mut self) {}

    fn out_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        input
    }
}

/// 2x2 max pooling with stride 2. Odd trailing rows/columns are dropped.
#[derive(Debug)]
pub struct MaxPool2 {
    argmax: Option<Vec<usize>>,
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl MaxPool2 {
    /// New pooling layer.
    pub fn new() -> Self {
        Self {
            argmax: None,
            in_shape: None,
        }
    }
}

impl Default for MaxPool2 {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for MaxPool2 {
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let oh = x.h / 2;
        let ow = x.w / 2;
        assert!(oh > 0 && ow > 0, "max pool on sub-2px map");
        let mut out = Tensor4::zeros(x.n, x.c, oh, ow);
        let mut argmax = if train {
            Vec::with_capacity(x.n * x.c * oh * ow)
        } else {
            Vec::new()
        };
        for n in 0..x.n {
            for c in 0..x.c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut best = f32::NEG_INFINITY;
                        let mut best_idx = 0usize;
                        for dy in 0..2 {
                            for dx in 0..2 {
                                let idx = x.idx(n, c, oy * 2 + dy, ox * 2 + dx);
                                let v = x.as_slice()[idx];
                                if v > best {
                                    best = v;
                                    best_idx = idx;
                                }
                            }
                        }
                        out.set(n, c, oy, ox, best);
                        if train {
                            argmax.push(best_idx);
                        }
                    }
                }
            }
        }
        if train {
            self.argmax = Some(argmax);
            self.in_shape = Some((x.n, x.c, x.h, x.w));
        }
        out
    }

    fn backward(&mut self, dy: &Tensor4) -> Tensor4 {
        let argmax = self
            .argmax
            .as_ref()
            // ig-lint: allow(panic) -- Layer contract: backward follows
            // forward(train=true), which stores the argmax indices
            .expect("backward before forward(train)");
        // ig-lint: allow(panic) -- same contract covers the cached shape
        let (n, c, h, w) = self.in_shape.expect("backward before forward(train)");
        let mut dx = Tensor4::zeros(n, c, h, w);
        for (&idx, &g) in argmax.iter().zip(dy.as_slice()) {
            dx.as_mut_slice()[idx] += g;
        }
        dx
    }

    fn update(&mut self) {}

    fn out_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        let (c, h, w) = input;
        (c, h / 2, w / 2)
    }
}

/// Global average pooling: `(n, c, h, w)` → `(n, c, 1, 1)`.
#[derive(Debug)]
pub struct GlobalAvgPool {
    in_shape: Option<(usize, usize, usize, usize)>,
}

impl GlobalAvgPool {
    /// New GAP layer.
    pub fn new() -> Self {
        Self { in_shape: None }
    }
}

impl Default for GlobalAvgPool {
    fn default() -> Self {
        Self::new()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let mut out = Tensor4::zeros(x.n, x.c, 1, 1);
        let area = (x.h * x.w) as f32;
        for n in 0..x.n {
            for c in 0..x.c {
                let mut acc = 0.0f32;
                for y in 0..x.h {
                    for xx in 0..x.w {
                        acc += x.get(n, c, y, xx);
                    }
                }
                out.set(n, c, 0, 0, acc / area);
            }
        }
        if train {
            self.in_shape = Some((x.n, x.c, x.h, x.w));
        }
        out
    }

    fn backward(&mut self, dy: &Tensor4) -> Tensor4 {
        // ig-lint: allow(panic) -- Layer contract: backward follows
        // forward(train=true), which stores the input shape
        let (n, c, h, w) = self.in_shape.expect("backward before forward(train)");
        let mut dx = Tensor4::zeros(n, c, h, w);
        let inv_area = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for ci in 0..c {
                let g = dy.get(ni, ci, 0, 0) * inv_area;
                for y in 0..h {
                    for x in 0..w {
                        dx.set(ni, ci, y, x, g);
                    }
                }
            }
        }
        dx
    }

    fn update(&mut self) {}

    fn out_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        (input.0, 1, 1)
    }
}

/// Fully-connected head on a `(n, c, 1, 1)` tensor: channels → features.
#[derive(Debug)]
pub struct DenseLayer {
    in_f: usize,
    out_f: usize,
    weights: Param, // in_f x out_f row-major
    bias: Param,
    cache: Option<Tensor4>,
}

impl DenseLayer {
    /// Xavier-initialized dense layer.
    pub fn new(in_f: usize, out_f: usize, lr: f32, rng: &mut impl Rng) -> Self {
        let limit = (6.0 / (in_f + out_f) as f32).sqrt();
        let weights: Vec<f32> = (0..in_f * out_f)
            .map(|_| rng.gen_range(-limit..=limit))
            .collect();
        Self {
            in_f,
            out_f,
            weights: Param::new(weights, lr),
            bias: Param::new(vec![0.0; out_f], lr),
            cache: None,
        }
    }
}

impl Layer for DenseLayer {
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let feat = x.c * x.h * x.w;
        assert_eq!(feat, self.in_f, "dense head input size mismatch");
        let mut out = Tensor4::zeros(x.n, self.out_f, 1, 1);
        for n in 0..x.n {
            let xin = &x.as_slice()[n * feat..(n + 1) * feat];
            for o in 0..self.out_f {
                let mut acc = self.bias.value[o];
                for (i, &xv) in xin.iter().enumerate() {
                    acc += self.weights.value[i * self.out_f + o] * xv;
                }
                out.set(n, o, 0, 0, acc);
            }
        }
        if train {
            self.cache = Some(x.clone());
        }
        out
    }

    fn backward(&mut self, dy: &Tensor4) -> Tensor4 {
        // ig-lint: allow(panic) -- Layer contract: backward is only called
        // after forward(train=true), which populates the cache
        let x = self.cache.as_ref().expect("backward before forward(train)");
        let feat = self.in_f;
        let mut dx = Tensor4::zeros(x.n, x.c, x.h, x.w);
        for n in 0..x.n {
            let xin = &x.as_slice()[n * feat..(n + 1) * feat];
            for o in 0..self.out_f {
                let g = dy.get(n, o, 0, 0);
                // ig-lint: allow(float-eq) -- sparsity fast path:
                // skipping exactly-zero gradients is sound for any value
                if g == 0.0 {
                    continue;
                }
                self.bias.grad[o] += g;
                for (i, &xv) in xin.iter().enumerate() {
                    self.weights.grad[i * self.out_f + o] += g * xv;
                    dx.as_mut_slice()[n * feat + i] += g * self.weights.value[i * self.out_f + o];
                }
            }
        }
        dx
    }

    fn update(&mut self) {
        self.weights.step();
        self.bias.step();
    }

    fn out_shape(&self, _input: (usize, usize, usize)) -> (usize, usize, usize) {
        (self.out_f, 1, 1)
    }
}

/// Residual wrapper: `y = inner(x) + x`. Inner layers must preserve shape.
#[derive(Debug)]
pub struct Residual {
    inner: Vec<Box<dyn Layer>>,
}

impl Residual {
    /// Wrap a shape-preserving stack of layers with an identity skip.
    pub fn new(inner: Vec<Box<dyn Layer>>) -> Self {
        Self { inner }
    }
}

impl Layer for Residual {
    fn forward(&mut self, x: &Tensor4, train: bool) -> Tensor4 {
        let mut y = x.clone();
        for layer in &mut self.inner {
            y = layer.forward(&y, train);
        }
        assert_eq!(
            (y.c, y.h, y.w),
            (x.c, x.h, x.w),
            "residual inner stack must preserve shape"
        );
        for (o, &i) in y.as_mut_slice().iter_mut().zip(x.as_slice()) {
            *o += i;
        }
        y
    }

    fn backward(&mut self, dy: &Tensor4) -> Tensor4 {
        let mut g = dy.clone();
        for layer in self.inner.iter_mut().rev() {
            g = layer.backward(&g);
        }
        for (gi, &dyi) in g.as_mut_slice().iter_mut().zip(dy.as_slice()) {
            *gi += dyi;
        }
        g
    }

    fn update(&mut self) {
        for layer in &mut self.inner {
            layer.update();
        }
    }

    fn out_shape(&self, input: (usize, usize, usize)) -> (usize, usize, usize) {
        input
    }
}

/// A sequential CNN classifier with a softmax cross-entropy objective.
#[derive(Debug)]
pub struct Cnn {
    layers: Vec<Box<dyn Layer>>,
    num_classes: usize,
}

impl Cnn {
    /// Build from a layer stack whose final output is `(n, classes, 1, 1)`.
    pub fn new(layers: Vec<Box<dyn Layer>>, num_classes: usize) -> Self {
        Self {
            layers,
            num_classes,
        }
    }

    /// Number of classes in the head.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Forward to logits as a `(n, classes)` matrix.
    pub fn forward_logits(&mut self, x: &Tensor4, train: bool) -> Matrix {
        let mut y = x.clone();
        for layer in &mut self.layers {
            y = layer.forward(&y, train);
        }
        assert_eq!(y.c * y.h * y.w, self.num_classes, "head output mismatch");
        y.to_matrix()
    }

    /// Softmax probabilities per row.
    pub fn predict_proba(&mut self, x: &Tensor4) -> Matrix {
        softmax_rows(&self.forward_logits(x, false))
    }

    /// Argmax class prediction.
    pub fn predict(&mut self, x: &Tensor4) -> Vec<usize> {
        let logits = self.forward_logits(x, false);
        (0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// One optimization step on a minibatch; returns the batch loss.
    pub fn train_batch(&mut self, x: &Tensor4, classes: &[usize]) -> f32 {
        assert_eq!(x.n, classes.len(), "batch label count mismatch");
        let logits = self.forward_logits(x, true);
        let probs = softmax_rows(&logits);
        let n = x.n as f32;
        let mut loss = 0.0f32;
        let mut grad = probs.clone();
        for (r, &cls) in classes.iter().enumerate() {
            assert!(cls < self.num_classes, "class index out of range");
            loss += -(probs.get(r, cls).max(1e-12)).ln();
            let row = grad.row_mut(r);
            row[cls] -= 1.0;
            for v in row.iter_mut() {
                *v /= n;
            }
        }
        let dy = Tensor4::from_vec(x.n, self.num_classes, 1, 1, grad.as_slice().to_vec());
        let mut g = dy;
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        for layer in &mut self.layers {
            layer.update();
        }
        loss / n
    }

    /// Replace the last `tail_layers` layers with freshly initialized ones
    /// — the fine-tuning entry point for the transfer-learning baseline
    /// (keep the convolutional trunk, re-learn the head). The caller is
    /// responsible for updating [`Cnn::set_num_classes`] when the new head
    /// changes the output width.
    pub fn reset_tail(&mut self, tail_layers: usize, make: impl FnOnce() -> Vec<Box<dyn Layer>>) {
        let keep = self.layers.len().saturating_sub(tail_layers);
        self.layers.truncate(keep);
        self.layers.extend(make());
    }

    /// Update the class count after swapping the head with
    /// [`Cnn::reset_tail`].
    pub fn set_num_classes(&mut self, classes: usize) {
        self.num_classes = classes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tensor_from(n: usize, c: usize, h: usize, w: usize, f: impl Fn(usize) -> f32) -> Tensor4 {
        let data = (0..n * c * h * w).map(f).collect();
        Tensor4::from_vec(n, c, h, w, data)
    }

    #[test]
    fn tensor_index_roundtrip() {
        let t = tensor_from(2, 3, 4, 5, |i| i as f32);
        for n in 0..2 {
            for c in 0..3 {
                for y in 0..4 {
                    for x in 0..5 {
                        let idx = t.idx(n, c, y, x);
                        assert_eq!(t.get(n, c, y, x), t.as_slice()[idx]);
                    }
                }
            }
        }
    }

    #[test]
    fn tensor_to_matrix_flattens_rows_per_sample() {
        let t = tensor_from(2, 1, 2, 2, |i| i as f32);
        let m = t.to_matrix();
        assert_eq!(m.shape(), (2, 4));
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0, 7.0]);
    }

    #[test]
    #[should_panic(expected = "tensor buffer length mismatch")]
    fn tensor_from_vec_rejects_bad_length() {
        let _ = Tensor4::from_vec(1, 1, 2, 2, vec![0.0; 3]);
    }

    #[test]
    fn cnn_predict_proba_rows_are_distributions() {
        let mut rng = StdRng::seed_from_u64(40);
        let mut cnn = mini_smoke_cnn(&mut rng);
        let x = tensor_from(3, 1, 8, 8, |i| (i % 9) as f32 * 0.1);
        let p = cnn.predict_proba(&x);
        assert_eq!(p.shape(), (3, 2));
        for r in 0..3 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    fn mini_smoke_cnn(rng: &mut StdRng) -> Cnn {
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 2, 3, 1, 1, 0.01, rng)),
            Box::new(ReluLayer::new()),
            Box::new(GlobalAvgPool::new()),
            Box::new(DenseLayer::new(2, 2, 0.01, rng)),
        ];
        Cnn::new(layers, 2)
    }

    #[test]
    fn conv_identity_kernel_preserves_image() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0.01, &mut rng);
        // Set kernel to identity (center = 1).
        conv.weights.value.iter_mut().for_each(|w| *w = 0.0);
        conv.weights.value[4] = 1.0;
        conv.bias.value[0] = 0.0;
        let x = tensor_from(1, 1, 5, 5, |i| i as f32 * 0.1);
        let y = conv.forward(&x, false);
        assert_eq!(y.chw(), (1, 5, 5));
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn conv_output_shape_with_stride_and_pad() {
        let mut rng = StdRng::seed_from_u64(1);
        let conv = Conv2d::new(3, 8, 3, 2, 1, 0.01, &mut rng);
        assert_eq!(conv.out_shape((3, 32, 32)), (8, 16, 16));
        let conv2 = Conv2d::new(3, 4, 5, 1, 0, 0.01, &mut rng);
        assert_eq!(conv2.out_shape((3, 32, 32)), (4, 28, 28));
    }

    #[test]
    fn conv_gradient_check() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut conv = Conv2d::new(2, 2, 3, 1, 1, 0.01, &mut rng);
        let x = tensor_from(1, 2, 4, 4, |i| ((i * 7) % 5) as f32 * 0.2 - 0.4);
        // Loss = 0.5 * sum(y^2) → dy = y.
        let loss_of = |conv: &mut Conv2d, x: &Tensor4| {
            let y = conv.forward(x, false);
            0.5 * y.as_slice().iter().map(|&v| v * v).sum::<f32>()
        };
        let y = conv.forward(&x, true);
        let dx = conv.backward(&y);
        let eps = 1e-3f32;
        // Check a few weight gradients.
        for wi in [0usize, 5, 11, 17, 23, 35] {
            let analytic = conv.weights.grad[wi];
            conv.weights.value[wi] += eps;
            let lp = loss_of(&mut conv, &x);
            conv.weights.value[wi] -= 2.0 * eps;
            let lm = loss_of(&mut conv, &x);
            conv.weights.value[wi] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "weight {wi}: {analytic} vs {numeric}"
            );
        }
        // Check a few input gradients.
        for xi in [0usize, 7, 15, 22, 31] {
            let analytic = dx.as_slice()[xi];
            let mut xp = x.clone();
            xp.as_mut_slice()[xi] += eps;
            let lp = loss_of(&mut conv, &xp);
            xp.as_mut_slice()[xi] -= 2.0 * eps;
            let lm = loss_of(&mut conv, &xp);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "input {xi}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn depthwise_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut conv = DepthwiseConv2d::new(2, 3, 1, 1, 0.01, &mut rng);
        let x = tensor_from(1, 2, 4, 4, |i| ((i * 3) % 7) as f32 * 0.1 - 0.3);
        let loss_of = |conv: &mut DepthwiseConv2d, x: &Tensor4| {
            let y = conv.forward(x, false);
            0.5 * y.as_slice().iter().map(|&v| v * v).sum::<f32>()
        };
        let y = conv.forward(&x, true);
        let _ = conv.backward(&y);
        let eps = 1e-3f32;
        for wi in [0usize, 4, 9, 13, 17] {
            let analytic = conv.weights.grad[wi];
            conv.weights.value[wi] += eps;
            let lp = loss_of(&mut conv, &x);
            conv.weights.value[wi] -= 2.0 * eps;
            let lm = loss_of(&mut conv, &x);
            conv.weights.value[wi] += eps;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (analytic - numeric).abs() < 2e-2,
                "weight {wi}: {analytic} vs {numeric}"
            );
        }
    }

    #[test]
    fn maxpool_forward_and_routing() {
        let x = Tensor4::from_vec(
            1,
            1,
            4,
            4,
            vec![
                1.0, 2.0, 5.0, 6.0, //
                3.0, 4.0, 7.0, 8.0, //
                9.0, 10.0, 13.0, 14.0, //
                11.0, 12.0, 15.0, 16.0,
            ],
        );
        let mut pool = MaxPool2::new();
        let y = pool.forward(&x, true);
        assert_eq!(y.as_slice(), &[4.0, 8.0, 12.0, 16.0]);
        let dy = Tensor4::from_vec(1, 1, 2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let dx = pool.backward(&dy);
        // Gradient goes only to the max positions.
        assert_eq!(dx.get(0, 0, 1, 1), 1.0);
        assert_eq!(dx.get(0, 0, 1, 3), 2.0);
        assert_eq!(dx.get(0, 0, 3, 1), 3.0);
        assert_eq!(dx.get(0, 0, 3, 3), 4.0);
        assert_eq!(dx.as_slice().iter().filter(|&&v| v != 0.0).count(), 4);
    }

    #[test]
    fn maxpool_drops_odd_edges() {
        let x = Tensor4::zeros(1, 1, 5, 7);
        let mut pool = MaxPool2::new();
        let y = pool.forward(&x, false);
        assert_eq!((y.h, y.w), (2, 3));
    }

    #[test]
    fn gap_averages_and_backprops_uniformly() {
        let x = tensor_from(1, 2, 2, 2, |i| i as f32);
        let mut gap = GlobalAvgPool::new();
        let y = gap.forward(&x, true);
        assert!((y.get(0, 0, 0, 0) - 1.5).abs() < 1e-6);
        assert!((y.get(0, 1, 0, 0) - 5.5).abs() < 1e-6);
        let dy = Tensor4::from_vec(1, 2, 1, 1, vec![4.0, 8.0]);
        let dx = gap.backward(&dy);
        assert!(dx.as_slice()[..4].iter().all(|&v| (v - 1.0).abs() < 1e-6));
        assert!(dx.as_slice()[4..].iter().all(|&v| (v - 2.0).abs() < 1e-6));
    }

    #[test]
    fn relu_masks_gradient() {
        let x = Tensor4::from_vec(1, 1, 1, 4, vec![-1.0, 2.0, -3.0, 4.0]);
        let mut relu = ReluLayer::new();
        let y = relu.forward(&x, true);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        let dy = Tensor4::from_vec(1, 1, 1, 4, vec![1.0, 1.0, 1.0, 1.0]);
        let dx = relu.backward(&dy);
        assert_eq!(dx.as_slice(), &[0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn residual_adds_identity() {
        let mut rng = StdRng::seed_from_u64(4);
        // Inner conv initialized to zero → block should be pure identity.
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, 0.01, &mut rng);
        conv.weights.value.iter_mut().for_each(|w| *w = 0.0);
        let mut block = Residual::new(vec![Box::new(conv)]);
        let x = tensor_from(1, 1, 4, 4, |i| i as f32 * 0.1);
        let y = block.forward(&x, true);
        for (a, b) in x.as_slice().iter().zip(y.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
        // Gradient through identity path survives.
        let dy = tensor_from(1, 1, 4, 4, |_| 1.0);
        let dx = block.backward(&dy);
        for &v in dx.as_slice() {
            assert!((v - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn tiny_cnn_learns_bright_vs_dark() {
        let mut rng = StdRng::seed_from_u64(5);
        let lr = 0.02;
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 4, 3, 1, 1, lr, &mut rng)),
            Box::new(ReluLayer::new()),
            Box::new(MaxPool2::new()),
            Box::new(GlobalAvgPool::new()),
            Box::new(DenseLayer::new(4, 2, lr, &mut rng)),
        ];
        let mut cnn = Cnn::new(layers, 2);
        // Class 0: dark images; class 1: bright images.
        let mut images = Vec::new();
        let mut labels = Vec::new();
        for i in 0..16 {
            let bright = i % 2 == 1;
            let base = if bright { 0.8 } else { 0.2 };
            let img = tensor_from(1, 1, 8, 8, |j| base + ((j * 31 + i) % 7) as f32 * 0.01);
            images.push(img);
            labels.push(bright as usize);
        }
        for _ in 0..60 {
            for (img, &lbl) in images.iter().zip(&labels) {
                cnn.train_batch(img, &[lbl]);
            }
        }
        let mut correct = 0;
        for (img, &lbl) in images.iter().zip(&labels) {
            if cnn.predict(img)[0] == lbl {
                correct += 1;
            }
        }
        assert!(correct >= 14, "only {correct}/16 correct");
    }

    #[test]
    fn reset_tail_swaps_head() {
        let mut rng = StdRng::seed_from_u64(6);
        let lr = 0.01;
        let layers: Vec<Box<dyn Layer>> = vec![
            Box::new(Conv2d::new(1, 2, 3, 1, 1, lr, &mut rng)),
            Box::new(GlobalAvgPool::new()),
            Box::new(DenseLayer::new(2, 3, lr, &mut rng)),
        ];
        let mut cnn = Cnn::new(layers, 3);
        let x = Tensor4::zeros(1, 1, 6, 6);
        assert_eq!(cnn.forward_logits(&x, false).cols(), 3);
        let mut rng2 = StdRng::seed_from_u64(7);
        cnn.reset_tail(1, || {
            vec![Box::new(DenseLayer::new(2, 5, 0.01, &mut rng2)) as Box<dyn Layer>]
        });
        cnn.set_num_classes(5);
        assert_eq!(cnn.forward_logits(&x, false).cols(), 5);
    }
}
