//! Property tests for the labeler's robustness guarantees: no matter how
//! hostile the feature matrix (NaN, +/-Inf, huge, denormal cells from the
//! `ig-faults` adversarial generators), fitting never panics and
//! predictions are always finite, valid probability distributions.
//!
//! Also pins the batched matching engine's contracts: the prepared
//! (cached pyramid/integral) matchers are bit-identical to the per-call
//! matchers over random inputs, and cell-granular panic recovery
//! reconstructs the serial result exactly.

use ig_core::{
    FaultKind, FeatureGenerator, HealthReport, Labeler, LabelerConfig, Pattern, RecoveryAction,
};
use ig_faults::inject::{adversarial_labels, adversarial_matrix, corrupt_matrix};
use ig_faults::FaultPlan;
use ig_imaging::ncc::PyramidMatchConfig;
use ig_imaging::{
    match_prepared, match_prepared_exact, match_template, match_template_pyramid, GrayImage,
    PreparedImage, PreparedPattern,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_image(w: usize, h: usize, rng: &mut StdRng) -> GrayImage {
    GrayImage::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
}

/// Probabilities must be finite, in [0, 1], and sum to 1 per row.
fn assert_valid_distributions(proba: &ig_nn::Matrix) {
    for r in 0..proba.rows() {
        let mut sum = 0.0f32;
        for &v in proba.row(r) {
            assert!(v.is_finite(), "probability {v} not finite");
            assert!(
                (-1e-5..=1.0 + 1e-5).contains(&v),
                "probability {v} out of range"
            );
            sum += v;
        }
        assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn labeler_never_emits_non_finite_probabilities(
        rows in 4usize..16,
        cols in 1usize..5,
        seed in any::<u64>(),
        hostile_rate in 0.0f64..0.5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = adversarial_matrix(rows, cols, seed, hostile_rate);
        let labels = adversarial_labels(rows, seed ^ 0xabcd);
        let mut labeler = Labeler::new(cols, LabelerConfig::new(2), &mut rng).unwrap();
        // Fitting may legitimately fail (divergence after restarts), but the
        // labeler's parameters stay finite either way, so inference on a
        // second hostile batch must still produce valid distributions.
        let _ = labeler.fit(&x, &labels);
        let hostile = adversarial_matrix(rows, cols, seed ^ 0x77, 0.6);
        assert_valid_distributions(&labeler.predict_proba(&hostile));
        prop_assert!(labeler.predict(&hostile).iter().all(|&p| p < 2));
    }

    #[test]
    fn multiclass_labeler_survives_adversarial_features(
        labels in proptest::collection::vec(0usize..3, 6..20),
        seed in any::<u64>(),
        hostile_rate in 0.0f64..0.4,
    ) {
        // Ensure all three classes appear so the fit is well-posed.
        let mut labels = labels;
        labels[0] = 0;
        labels[1] = 1;
        labels[2] = 2;
        let mut rng = StdRng::seed_from_u64(seed);
        let x = adversarial_matrix(labels.len(), 4, seed, hostile_rate);
        let mut labeler = Labeler::new(4, LabelerConfig::new(3), &mut rng).unwrap();
        let _ = labeler.fit(&x, &labels);
        assert_valid_distributions(&labeler.predict_proba(&x));
        prop_assert!(labeler.predict(&x).iter().all(|&p| p < 3));
    }

    #[test]
    fn poisoned_lbfgs_evaluations_are_recorded_and_survived(
        seed in any::<u64>(),
        poison_rate in 0.05f64..0.5,
    ) {
        // Clean, separable data; the only hostility is the plan poisoning
        // a fraction of objective evaluations with NaN losses.
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f32>> = (0..20)
            .map(|i| {
                let hi = if i % 2 == 0 { 0.95 } else { 0.82 };
                vec![hi, 0.84, hi - 0.02]
            })
            .collect();
        let labels: Vec<usize> = (0..20).map(|i| i % 2).collect();
        let x = ig_nn::Matrix::from_rows(&rows);
        let plan = FaultPlan {
            seed,
            lbfgs_poison_rate: poison_rate,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let mut labeler = Labeler::new(3, LabelerConfig::new(2), &mut rng).unwrap();
        let outcome = labeler.fit_with_plan(&x, &labels, Some(&plan), Some(&health));
        // Every injected poison shows up as a divergence event, and the
        // parameters survive regardless of the fit outcome.
        if outcome.is_err() {
            prop_assert!(health.count(FaultKind::TrainingFailure) >= 1);
        }
        prop_assert!(
            health.count(FaultKind::LbfgsDivergence) >= 1
                || health.count_action(RecoveryAction::RestartedWithJitter) == 0
        );
        assert_valid_distributions(&labeler.predict_proba(&x));
    }

    #[test]
    fn plan_corrupted_features_never_poison_predictions(
        rows in 4usize..16,
        cols in 1usize..5,
        seed in any::<u64>(),
        nan_rate in 0.0f64..0.4,
        inf_rate in 0.0f64..0.3,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = adversarial_matrix(rows, cols, seed, 0.0); // benign base
        let plan = FaultPlan {
            seed: seed ^ 0x1234,
            nan_feature_rate: nan_rate,
            inf_feature_rate: inf_rate,
            ..FaultPlan::default()
        };
        let cells = corrupt_matrix(&mut x, &plan);
        for &(r, c) in &cells {
            prop_assert!(!x.get(r, c).is_finite());
        }
        let labels = adversarial_labels(rows, seed ^ 0x9999);
        let mut labeler = Labeler::new(cols, LabelerConfig::new(2), &mut rng).unwrap();
        let _ = labeler.fit(&x, &labels);
        assert_valid_distributions(&labeler.predict_proba(&x));
    }

    #[test]
    fn prepared_matchers_bit_identical_to_per_call(
        iw in 10usize..48,
        ih in 10usize..40,
        pw in 2usize..10,
        ph in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let img = random_image(iw, ih, &mut rng);
        let pat = random_image(pw, ph, &mut rng);
        let config = PyramidMatchConfig::default();
        let prep_img = PreparedImage::new(&img, &config);
        let prep_pat = PreparedPattern::new(&pat, &config).unwrap();
        let a = match_template_pyramid(&img, &pat, &config).unwrap();
        let b = match_prepared(&prep_img, &prep_pat, &config).unwrap();
        prop_assert_eq!((a.x, a.y), (b.x, b.y));
        prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "pyramid: {} vs {}", a.score, b.score);
        let a = match_template(&img, &pat).unwrap();
        let b = match_prepared_exact(&prep_img, &prep_pat).unwrap();
        prop_assert_eq!((a.x, a.y), (b.x, b.y));
        prop_assert_eq!(a.score.to_bits(), b.score.to_bits(), "exact: {} vs {}", a.score, b.score);
    }

    #[test]
    fn cell_granular_panic_recovery_matches_serial_exactly(
        n_images in 1usize..6,
        threads in 2usize..6,
        panic_rate in 0.3f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let images: Vec<GrayImage> = (0..n_images)
            .map(|_| random_image(24, 18, &mut rng))
            .collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let patterns = vec![
            Pattern::crowd(random_image(5, 5, &mut rng)),
            Pattern::crowd(random_image(7, 4, &mut rng)),
        ];
        let serial = FeatureGenerator::new(patterns.clone())
            .unwrap()
            .with_threads(1)
            .feature_matrix(&refs);
        let plan = FaultPlan {
            seed: seed ^ 0x50f7,
            worker_panic_rate: panic_rate,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let recovered = FeatureGenerator::new(patterns)
            .unwrap()
            .with_threads(threads)
            .feature_matrix_with_health(&refs, Some(&plan), &health);
        prop_assert_eq!(serial.shape(), recovered.shape());
        for (a, b) in serial.as_slice().iter().zip(recovered.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "recovered {} vs serial {}", b, a);
        }
    }

    #[test]
    fn class_prior_labeler_ignores_hostile_features(
        rows in 2usize..10,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = adversarial_labels(rows, seed);
        let labeler = Labeler::class_prior(3, LabelerConfig::new(2), &labels, &mut rng).unwrap();
        let hostile = adversarial_matrix(rows, 3, seed ^ 0x4242, 0.7);
        let proba = labeler.predict_proba(&hostile);
        assert_valid_distributions(&proba);
        // Priors depend only on the labels: every row gets the same P(1).
        for r in 1..proba.rows() {
            prop_assert!((proba.get(r, 1) - proba.get(0, 1)).abs() < 1e-6);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// PR 9 rerun of the recovery contract over the new kernel dispatch:
    /// a GAN-scale 128x128 pattern on a 256x256 frame pushes the coarse
    /// scan across the FFT crossover (16x16 coarse pattern on a 32x32
    /// level), so recovered cells are reconstructed through the spectral
    /// numerator + exact refine. Serial and recovered runs share that
    /// deterministic dispatch, so results stay bit-identical; the small
    /// second pattern keeps sweep-path cells in the same matrix.
    #[test]
    fn cell_granular_panic_recovery_matches_serial_over_fft_dispatch(
        threads in 2usize..6,
        panic_rate in 0.3f64..=1.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let images: Vec<GrayImage> = (0..2)
            .map(|_| random_image(256, 256, &mut rng))
            .collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let patterns = vec![
            Pattern::crowd(random_image(128, 128, &mut rng)),
            Pattern::crowd(random_image(7, 5, &mut rng)),
        ];
        let serial = FeatureGenerator::new(patterns.clone())
            .unwrap()
            .with_threads(1)
            .feature_matrix(&refs);
        let plan = FaultPlan {
            seed: seed ^ 0x50f7,
            worker_panic_rate: panic_rate,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let recovered = FeatureGenerator::new(patterns)
            .unwrap()
            .with_threads(threads)
            .feature_matrix_with_health(&refs, Some(&plan), &health);
        prop_assert_eq!(serial.shape(), recovered.shape());
        for (a, b) in serial.as_slice().iter().zip(recovered.as_slice()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "recovered {} vs serial {}", b, a);
        }
    }
}
