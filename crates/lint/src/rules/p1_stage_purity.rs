//! P1: stage purity — no ambient effects reachable from `Stage::run`.
//!
//! A memoized artifact is replayed instead of recomputed, so anything
//! `run()` observes besides its fingerprinted inputs — the filesystem,
//! the environment, the wall clock, unscoped threads, child processes —
//! makes "cache hit" and "recompute" observably different runs. D1
//! already bans clocks and entropy *lexically*; this rule extends the
//! determinism argument across call boundaries using the workspace call
//! graph: every call site whose callee degrades to an effectful
//! `Unknown` node is reported if any stage's `run()` reaches its caller.
//!
//! Two scopes are blessed: the runtime persistence modules
//! ([`PERSISTENCE_FILES`]) may perform any effect (durability *is* their
//! contract — crash-consistency is tested by fault injection, not
//! forbidden), and the deterministic parallel engines ([`ENGINE_FILES`])
//! may spawn scoped threads (their reductions are order-independent).

use std::collections::{BTreeSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::context::{FileClass, FileContext, ENGINE_FILES, PERSISTENCE_FILES};
use crate::report::Diagnostic;
use crate::symbols::Symbols;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Effect {
    Fs,
    Env,
    Time,
    Thread,
    Process,
}

/// Classify an `Unknown` node label as an ambient effect. Labels are
/// absolutized call paths (`std::fs::write`) or receiver-blind method
/// names (`.spawn`).
fn effect_of(label: &str) -> Option<(Effect, &'static str)> {
    if label.ends_with("SystemTime::now") || label.ends_with("Instant::now") {
        return Some((Effect::Time, "reads the wall clock"));
    }
    if label.starts_with("std::fs::")
        || label.starts_with("fs::")
        || label.contains("File::")
        || label.contains("OpenOptions")
    {
        return Some((Effect::Fs, "touches the filesystem"));
    }
    if label.starts_with("std::env::") || label.starts_with("env::") {
        return Some((Effect::Env, "reads the process environment"));
    }
    if label.contains("thread::spawn")
        || label.contains("thread::scope")
        || label.contains("thread::sleep")
        || label == ".spawn"
    {
        return Some((Effect::Thread, "spawns or parks threads"));
    }
    if label.contains("Command::new") || label.starts_with("std::process::") {
        return Some((Effect::Process, "launches or inspects processes"));
    }
    None
}

pub fn check(ctxs: &[FileContext], sy: &Symbols, graph: &CallGraph, out: &mut Vec<Diagnostic>) {
    // Entry points: every non-test `Stage::run` in library code.
    let entries: Vec<usize> = sy
        .fns
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.trait_name.as_deref() == Some("Stage")
                && s.name == "run"
                && !s.in_test
                && ctxs[s.file].class == FileClass::Library
        })
        .map(|(i, _)| i)
        .collect();
    if entries.is_empty() {
        return;
    }
    // Joint BFS with provenance: each node remembers the first entry (in
    // symbol order) that reaches it, so diagnostics can name the stage.
    let mut prov: Vec<Option<usize>> = vec![None; graph.nodes.len()];
    let mut queue = VecDeque::new();
    for &e in &entries {
        let n = graph.node_of_sym[e];
        if prov[n].is_none() {
            prov[n] = Some(e);
            queue.push_back(n);
        }
    }
    while let Some(n) = queue.pop_front() {
        for &m in &graph.adj[n] {
            if prov[m].is_none() {
                prov[m] = prov[n];
                queue.push_back(m);
            }
        }
    }
    let mut seen = BTreeSet::new();
    for site in &graph.sites {
        let Some(&Some(entry)) = prov.get(site.caller) else {
            continue;
        };
        let node = &graph.nodes[site.callee];
        if node.sym.is_some() {
            continue;
        }
        let Some((effect, why)) = effect_of(&node.label) else {
            continue;
        };
        let fctx = &ctxs[site.file];
        if PERSISTENCE_FILES.contains(&fctx.path) {
            continue;
        }
        if effect == Effect::Thread && ENGINE_FILES.contains(&fctx.path) {
            continue;
        }
        // Test helpers reached through name-fallback resolution.
        if graph.nodes[site.caller]
            .sym
            .is_some_and(|cs| sy.fns[cs].in_test)
            || !fctx.governed(site.tok)
        {
            continue;
        }
        if !seen.insert((site.file, site.tok)) {
            continue;
        }
        let (line, col) = fctx
            .tokens
            .get(site.tok)
            .map_or((0, 1), |t| (t.line, t.col));
        out.push(Diagnostic {
            rule: "stage-purity".to_string(),
            path: fctx.path.to_string(),
            line,
            col,
            message: format!(
                "`{}` {why} and is reachable from `{}` — a stage's output must be a \
                 pure function of its fingerprint, or a cache hit and a recompute \
                 diverge; inject the effect through `RunContext` or move it into the \
                 runtime persistence layer",
                node.label, sy.fns[entry].path
            ),
        });
    }
}
