//! H1 fixture: per-iteration allocations in hot loop nests.

pub fn per_pixel(rows: usize, cols: usize, window: &[f32]) -> f32 {
    let mut acc = 0.0;
    for y in 0..rows {
        for x in 0..cols {
            let patch = Vec::new();
            let name = format!("{y}-{x}");
            let copy = window.to_vec();
            acc += score(&patch, &name, &copy);
        }
    }
    acc
}

pub fn adapter_alloc(items: &[u32], vals: &[u32]) -> Vec<Vec<u32>> {
    let mut out = Vec::new();
    for it in items {
        out.push(vals.iter().map(|v| v.clone()).collect());
        consume(it);
    }
    out
}

pub fn hoisted(rows: usize, cols: usize) -> f32 {
    let mut scratch = Vec::new();
    let mut acc = 0.0;
    for y in 0..rows {
        for x in 0..cols {
            scratch.clear();
            acc += accumulate(&mut scratch, y, x);
        }
    }
    acc
}

pub fn amortized(n: usize) {
    for i in 0..n {
        for j in 0..n {
            // ig-lint: allow(hot-loop-alloc) -- grows once then reuses capacity
            let label = format!("{i}:{j}");
            emit(&label);
        }
    }
}
