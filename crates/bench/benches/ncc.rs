//! Ablation bench: exact brute-force NCC vs the paper's coarse-to-fine
//! pyramid matcher (Section 5.1). The pyramid's advantage should grow
//! with image size — this is the design choice DESIGN.md flags.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ig_bench::{defect_pattern, textured_image};
use ig_imaging::ncc::{match_template, match_template_pyramid, score_map, PyramidMatchConfig};

fn bench_matchers(c: &mut Criterion) {
    let pattern = defect_pattern(16, 7);
    let mut group = c.benchmark_group("ncc_match");
    for side in [64usize, 128, 256] {
        let image = textured_image(side, side, side as u64);
        group.bench_with_input(BenchmarkId::new("exact", side), &side, |b, _| {
            b.iter(|| match_template(&image, &pattern).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("pyramid", side), &side, |b, _| {
            b.iter(|| {
                match_template_pyramid(&image, &pattern, &PyramidMatchConfig::default()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_score_map(c: &mut Criterion) {
    let pattern = defect_pattern(12, 9);
    let image = textured_image(128, 128, 11);
    c.bench_function("ncc_score_map_128", |b| {
        b.iter(|| score_map(&image, &pattern).unwrap())
    });
}

criterion_group!(benches, bench_matchers, bench_score_map);
criterion_main!(benches);
