//! In-memory content-addressed artifact store (tier 1 of 2).
//!
//! Artifacts are memoized stage outputs keyed by `(stage id, key
//! fingerprint)`; the key fingerprint is derived by [`crate::RunContext`]
//! from the stage's input fingerprint plus the run's seed and fault plan,
//! so a hit is only possible when replaying the exact same computation —
//! and the cached value is then bit-identical to what a recompute would
//! produce.
//!
//! The store is capacity-bounded: when more than `capacity` artifacts are
//! resident, the least-recently-used entries are evicted — but never an
//! artifact some caller still holds an `Arc` to (eviction only drops the
//! store's own reference, and dropping it while shared would merely split
//! the cache, so such entries are skipped until released). A
//! [`crate::DiskStore`] may be attached beneath as a read-through /
//! write-behind tier ([`ArtifactStore::attach_disk`]); the
//! [`crate::RunContext`] consults it on memory misses and persists
//! durable stage outputs after computing them, which is what makes
//! `--resume` and cross-process warm starts work.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use crate::disk::DiskStore;
use crate::fingerprint::Fingerprint;

/// Store key: stage identity plus the full input/seed/plan fingerprint.
/// `Ord` so the entry map iterates deterministically (eviction scans must
/// not depend on hash order).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Key {
    id: &'static str,
    fp: Fingerprint,
}

/// One resident artifact with its last-touched stamp.
#[derive(Debug)]
struct Entry {
    artifact: Arc<dyn Any + Send + Sync>,
    stamp: u64,
}

/// Thread-safe artifact cache shared by every stage under one
/// [`crate::RunContext`] (and its plan-scoped clones).
#[derive(Debug, Default)]
pub struct ArtifactStore {
    entries: Mutex<BTreeMap<Key, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Maximum resident artifacts; 0 = unbounded. `Release` store /
    /// `Acquire` load: the bound gates eviction control flow.
    capacity: AtomicUsize,
    /// Logical clock for LRU stamps (monotone per store, no wall clock).
    // ig-lint: allow(atomic-ordering) -- ticket counter: only uniqueness
    // and per-thread monotonicity of the returned stamp matter; stamps are
    // compared under the entries mutex, which orders the RMWs
    clock: AtomicU64,
    disk: OnceLock<Arc<DiskStore>>,
}

impl ArtifactStore {
    /// Empty, unbounded store with no disk tier.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach the on-disk tier. Idempotent-at-most-once: the first disk
    /// wins and later attempts are ignored (the runtime attaches exactly
    /// one per store; racing attachers would otherwise split the cache).
    pub fn attach_disk(&self, disk: Arc<DiskStore>) {
        match self.disk.set(disk) {
            Ok(()) | Err(_) => {}
        }
    }

    /// The attached disk tier, if any.
    pub fn disk(&self) -> Option<&Arc<DiskStore>> {
        self.disk.get()
    }

    /// Bound the resident artifact count (0 = unbounded). Shrinking below
    /// the current occupancy evicts immediately.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Release);
        let mut entries = self.lock();
        self.evict_over_capacity(&mut entries);
    }

    /// Current capacity bound (0 = unbounded).
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Acquire)
    }

    /// Look up an artifact; counts a hit or a miss and refreshes the
    /// entry's LRU stamp on a hit.
    pub fn get(&self, id: &'static str, fp: Fingerprint) -> Option<Arc<dyn Any + Send + Sync>> {
        let mut entries = self.lock();
        match entries.get_mut(&Key { id, fp }) {
            Some(entry) => {
                entry.stamp = self.clock.fetch_add(1, Ordering::Relaxed);
                let artifact = entry.artifact.clone();
                drop(entries);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(artifact)
            }
            None => {
                drop(entries);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert (or replace) an artifact, evicting LRU entries if the
    /// capacity bound is now exceeded.
    pub fn insert(&self, id: &'static str, fp: Fingerprint, artifact: Arc<dyn Any + Send + Sync>) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed);
        let mut entries = self.lock();
        entries.insert(Key { id, fp }, Entry { artifact, stamp });
        self.evict_over_capacity(&mut entries);
    }

    /// Number of cached artifacts.
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// True when nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Lookups served from cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to compute so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Artifacts evicted by the capacity bound so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Drop every cached artifact (counters and capacity are kept).
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Evict least-recently-used entries until the capacity bound holds.
    ///
    /// An entry whose `Arc` is still held outside the store
    /// (`strong_count > 1`) is never evicted: dropping the store's
    /// reference would not free the artifact, only orphan it from future
    /// hits. When every entry is live the map may temporarily exceed the
    /// bound; the next insert retries.
    fn evict_over_capacity(&self, entries: &mut BTreeMap<Key, Entry>) {
        let capacity = self.capacity.load(Ordering::Acquire);
        if capacity == 0 {
            return;
        }
        while entries.len() > capacity {
            let victim = entries
                .iter()
                .filter(|(_, e)| Arc::strong_count(&e.artifact) == 1)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| k.clone());
            match victim {
                Some(key) => {
                    entries.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => return, // every entry is pinned by a live Arc
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<Key, Entry>> {
        // A poisoned map only means a panic elsewhere while holding the
        // lock; the map itself is always in a consistent state between
        // `get`/`insert` calls, so recover rather than propagate.
        self.entries.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprintable;

    #[test]
    fn get_after_insert_round_trips() {
        let store = ArtifactStore::new();
        let fp = 1u64.fingerprint();
        assert!(store.get("s", fp).is_none());
        store.insert("s", fp, Arc::new(vec![1u32, 2, 3]));
        let found = store
            .get("s", fp)
            .and_then(|a| a.downcast::<Vec<u32>>().ok());
        assert_eq!(found.as_deref(), Some(&vec![1u32, 2, 3]));
        assert_eq!((store.hits(), store.misses()), (1, 1));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn distinct_ids_do_not_collide() {
        let store = ArtifactStore::new();
        let fp = 7u64.fingerprint();
        store.insert("a", fp, Arc::new(1u32));
        assert!(store.get("b", fp).is_none());
    }

    #[test]
    fn clear_empties_the_store() {
        let store = ArtifactStore::new();
        store.insert("a", 1u64.fingerprint(), Arc::new(1u32));
        store.clear();
        assert!(store.is_empty());
    }

    #[test]
    fn lru_respects_the_capacity_bound() {
        let store = ArtifactStore::new();
        store.set_capacity(2);
        store.insert("a", 1u64.fingerprint(), Arc::new(1u32));
        store.insert("b", 2u64.fingerprint(), Arc::new(2u32));
        // Touch "a" so "b" becomes the least recently used.
        assert!(store.get("a", 1u64.fingerprint()).is_some());
        store.insert("c", 3u64.fingerprint(), Arc::new(3u32));
        assert_eq!(store.len(), 2);
        assert_eq!(store.evictions(), 1);
        assert!(store.get("b", 2u64.fingerprint()).is_none(), "LRU evicted");
        assert!(store.get("a", 1u64.fingerprint()).is_some());
        assert!(store.get("c", 3u64.fingerprint()).is_some());
    }

    #[test]
    fn eviction_never_drops_a_live_arc() {
        let store = ArtifactStore::new();
        store.set_capacity(1);
        store.insert("a", 1u64.fingerprint(), Arc::new(1u32));
        let live = store.get("a", 1u64.fingerprint());
        assert!(live.is_some());
        // "a" is pinned by `live`; inserting "b" may overflow but must
        // not evict "a".
        store.insert("b", 2u64.fingerprint(), Arc::new(2u32));
        assert!(
            store.get("a", 1u64.fingerprint()).is_some(),
            "pinned artifact must survive eviction pressure"
        );
        drop(live);
        // Released: the next insert can finally enforce the bound.
        store.insert("c", 3u64.fingerprint(), Arc::new(3u32));
        assert!(store.len() <= 2);
        assert!(store.evictions() >= 1);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let store = ArtifactStore::new();
        for i in 0..4u64 {
            store.insert("s", i.fingerprint(), Arc::new(i));
        }
        assert_eq!(store.len(), 4);
        store.set_capacity(1);
        assert_eq!(store.len(), 1);
        assert_eq!(store.evictions(), 3);
    }

    #[test]
    fn zero_capacity_means_unbounded() {
        let store = ArtifactStore::new();
        assert_eq!(store.capacity(), 0);
        for i in 0..64u64 {
            store.insert("s", i.fingerprint(), Arc::new(i));
        }
        assert_eq!(store.len(), 64);
        assert_eq!(store.evictions(), 0);
    }

    #[test]
    fn attach_disk_is_first_wins() {
        let store = ArtifactStore::new();
        assert!(store.disk().is_none());
        let root = std::env::temp_dir().join(format!("ig-store-attach-{}", std::process::id()));
        let disk = match DiskStore::open(&root) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                assert!(false, "open failed: {e}");
                return;
            }
        };
        store.attach_disk(disk.clone());
        let second = match DiskStore::open(&root) {
            Ok(d) => Arc::new(d),
            Err(e) => {
                assert!(false, "open failed: {e}");
                return;
            }
        };
        store.attach_disk(second);
        assert!(
            store.disk().is_some_and(|d| Arc::ptr_eq(d, &disk)),
            "first attached disk wins"
        );
    }
}
