//! Chaos experiment: end-to-end fault injection and recovery.
//!
//! Not a paper table — a robustness harness for this reproduction. Two
//! arms run the full pipeline (crowd → augmentation → features → labeler)
//! on the same data and seeds: a *clean* arm under an empty [`FaultPlan`]
//! and a *chaos* arm under [`FaultPlan::chaos`], which injects every fault
//! class the plan supports (no-show and spamming crowdworkers, degenerate
//! patterns, NaN/Inf features, panicking feature workers, poisoned L-BFGS
//! evaluations, a diverging GAN epoch). The chaos arm must still return a
//! trained model; its [`HealthReport`] enumerates every fault detected and
//! the recovery applied.
//!
//! Each arm is a [`RunContext`] clone carrying its own plan: the arms
//! share the run-wide artifact store (dataset generation and test-image
//! preparation happen once), while every plan-sensitive stage keys its
//! cache entries by the plan — the clean arm can never be served a
//! faulted artifact.

use crate::common::{default_policies, f1, gan_config, ExpEnv, Prepared, Report};
use ig_augment::{augment_with_health, AugmentMethod};
use ig_core::{
    DevSet, FaultPlan, HealthEvent, HealthReport, InspectorGadget, MatchBackend, Pattern,
    PatternSource, PipelineConfig, RunContext,
};
use ig_crowd::{CrowdWorkflow, WorkerModel};
use ig_synth::spec::DatasetKind;
use serde::Serialize;

#[derive(Serialize)]
struct ArmRecord {
    arm: String,
    f1: f64,
    fault_events: usize,
    events: Vec<HealthEvent>,
}

/// Run the chaos experiment.
pub fn run(env: &ExpEnv) {
    let mut report = Report::new("chaos", &env.out);
    report.line("Chaos: fault injection and recovery across the full pipeline");
    report.line(format!("{:<8} {:>8} {:>8}", "arm", "F1", "faults"));
    let kind = DatasetKind::ProductScratch;
    let prepared = Prepared::new(&env.ctx, kind);
    let seed = env.seed();
    let mut records = Vec::new();
    for (arm, plan) in [
        ("clean", FaultPlan::none(seed)),
        ("chaos", FaultPlan::chaos(seed)),
    ] {
        let arm_ctx = env.ctx.clone().with_plan(Some(plan));
        let health = HealthReport::new();
        match run_arm(&arm_ctx, &prepared, kind, &health) {
            Some(score) => {
                report.line(format!("{arm:<8} {score:>8.3} {:>8}", health.len()));
                for line in health.render().lines() {
                    report.line(format!("    {line}"));
                }
                records.push(ArmRecord {
                    arm: arm.to_string(),
                    f1: score,
                    fault_events: health.len(),
                    events: health.events(),
                });
            }
            None => {
                // Even a failed arm explains itself: the health events up
                // to the bail-out point say why the pipeline fell over.
                report.line(format!("{arm:<8} {:>8} (pipeline unavailable)", "-"));
                for line in health.render().lines() {
                    report.line(format!("    {line}"));
                }
            }
        }
    }
    report.finish(&records);
}

/// A five-worker crew: large enough that an injected no-show plus an
/// injected spammer still leave an honest, mutually-corroborating
/// majority for the screening step to lean on.
fn chaos_crew() -> CrowdWorkflow {
    let mut workflow = CrowdWorkflow::full();
    workflow.workers.push(WorkerModel::typical());
    workflow.workers.push(WorkerModel::careful());
    workflow
}

/// One full pipeline run under the context's fault plan. Returns the
/// test-set F1; every stage's fault events are merged into `health` (also
/// on failure, so a bailed-out arm still carries its diagnosis). Training
/// runs through the stage graph ([`InspectorGadget::train_in`]), so the
/// recovery ladders execute inside the runtime and the test-image
/// matching caches come from the shared artifact store.
fn run_arm(
    ctx: &RunContext,
    prepared: &Prepared,
    kind: DatasetKind,
    health: &HealthReport,
) -> Option<f64> {
    let plan = ctx.plan();
    let dev = prepared.dev_images();
    let mut rng = ctx.rng(0);
    let crowd_out = chaos_crew().run_with_health(&dev, &mut rng, plan, health);
    if crowd_out.patterns.is_empty() {
        return None;
    }
    let policies = default_policies(kind);
    let all_patterns = augment_with_health(
        &crowd_out.patterns,
        AugmentMethod::Both,
        ctx.scale().augment_budget,
        &policies,
        &gan_config(ctx.scale()),
        &mut rng,
        plan,
        health,
    );
    let dev_images: Vec<&ig_imaging::GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let patterns = Pattern::wrap_all(all_patterns, PatternSource::Crowd);
    // Fixed architecture (tuning has its own ladder, exercised in unit
    // tests) and exactly two feature workers so chunk indices — and hence
    // planned worker panics — are stable across machines.
    let config = PipelineConfig {
        backend: MatchBackend::Pyramid,
        tune: false,
        threads: 2,
        ..Default::default()
    };
    let ig = InspectorGadget::train_in(
        ctx,
        patterns,
        DevSet::Raw(&dev_images),
        &dev_labels,
        prepared.num_classes(),
        &config,
        &mut rng,
    )
    .ok()?;
    health.absorb(&ig.health);
    let out = ig.label_prepared_in(ctx, &prepared.test_prepared(ctx));
    let score = f1(prepared.num_classes(), &prepared.test_labels(), &out.labels);
    Some(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_core::{FaultKind, RecoveryAction, ScalePlan};
    use ig_faults::GanFault;

    /// The acceptance test for the fault subsystem: every fault class the
    /// plan supports fires in one run, training still returns a model, and
    /// the health report enumerates each fault with its recovery.
    #[test]
    fn chaos_run_survives_every_fault_class() {
        // Probe for a plan seed whose deterministic decisions hit exactly
        // one no-show and one spammer in the five-worker crew (leaving an
        // honest majority) and poison the first L-BFGS evaluation.
        let plan = (0..50_000u64)
            .map(|s| FaultPlan {
                seed: s,
                nan_feature_rate: 0.05,
                inf_feature_rate: 0.02,
                degenerate_pattern_rate: 0.3,
                crowd_no_show_rate: 0.25,
                crowd_spammer_rate: 0.25,
                worker_panic_rate: 0.9,
                lbfgs_poison_rate: 0.02,
                gan_fault_epoch: Some(1),
                gan_fault: GanFault::Diverge,
            })
            .find(|p| {
                (0..5).filter(|&i| p.crowd_no_show(i)).count() == 1
                    && (0..5).filter(|&i| p.crowd_spammer(i)).count() == 1
                    && p.poison_loss(0)
                    && (0..2).any(|i| p.worker_panic(i))
                    && (0..20).any(|i| p.degenerate_pattern(i))
                    && (0..10).any(|r| (0..10).any(|c| !p.corrupt_feature(r, c, 1.0).is_finite()))
            })
            .expect("some seed hits the target fault pattern");

        let ctx = RunContext::new(7).with_scale(ScalePlan::quick());
        let prepared = Prepared::new(&ctx, DatasetKind::ProductScratch);
        let chaos_ctx = ctx.with_plan(Some(plan));
        let health = HealthReport::new();
        let score = run_arm(&chaos_ctx, &prepared, DatasetKind::ProductScratch, &health)
            .expect("chaos run still trains");
        assert!(score.is_finite());

        for kind in [
            FaultKind::CrowdNoShow,
            FaultKind::CrowdSpammer,
            FaultKind::GanDivergence,
            FaultKind::DegeneratePattern,
            FaultKind::NonFiniteFeature,
            FaultKind::WorkerPanic,
            FaultKind::LbfgsDivergence,
        ] {
            assert!(health.count(kind) >= 1, "no {kind} event recorded");
        }
        for action in [
            RecoveryAction::ExcludedWorker,
            RecoveryAction::RolledBackSnapshot,
            RecoveryAction::QuarantinedPattern,
            RecoveryAction::SanitizedValue,
            RecoveryAction::SerialRecompute,
            RecoveryAction::RestartedWithJitter,
        ] {
            assert!(
                health.count_action(action) >= 1,
                "no {action} recovery recorded"
            );
        }
    }

    /// Empty plan and no plan must be indistinguishable end to end: same
    /// RNG stream, same weak labels, same F1, clean health. The two runs
    /// share one context store — the plan-keyed cache must not leak
    /// either arm's artifacts into the other in a way that changes the
    /// outcome.
    #[test]
    fn empty_plan_leaves_accuracy_unchanged() {
        let ctx = RunContext::new(9).with_scale(ScalePlan::quick());
        let prepared = Prepared::new(&ctx, DatasetKind::ProductScratch);
        let h_none = HealthReport::new();
        let f1_none = run_arm(&ctx, &prepared, DatasetKind::ProductScratch, &h_none)
            .expect("clean run trains");
        let empty_ctx = ctx.clone().with_plan(Some(FaultPlan::none(9)));
        let h_empty = HealthReport::new();
        let f1_empty = run_arm(&empty_ctx, &prepared, DatasetKind::ProductScratch, &h_empty)
            .expect("clean run trains");
        assert_eq!(f1_none, f1_empty, "empty plan changed the outcome");
        assert!(h_none.is_clean() && h_empty.is_clean());
    }
}
