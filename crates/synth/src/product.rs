//! Product simulacra: strip-shaped images with scratch / bubble / stamping
//! defects. The paper splits its proprietary Product dataset into three
//! per-defect datasets (Section 6.1); we mirror that split.

use crate::defects::{paint_bubble, paint_scratch, paint_stamping};
use crate::spec::DatasetSpec;
use crate::surface::{corrupt_with_noise, strip_styled, StripStyle};
use crate::{Dataset, DefectKind, LabeledImage, TaskType};
use ig_imaging::{BBox, GrayImage};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Generate one of the three Product datasets.
pub fn generate(spec: &DatasetSpec, kind: DefectKind) -> Dataset {
    type Painter = fn(&mut GrayImage, &mut StdRng, f32) -> BBox;
    // One dispatch for the three Product defect kinds; anything else is a
    // caller bug, answered with an empty dataset instead of a panic.
    let dispatch: Option<(Painter, &str, StripStyle)> = match kind {
        DefectKind::Scratch => Some((paint_scratch, "Product (scratch)", StripStyle::Matte)),
        DefectKind::Bubble => Some((paint_bubble, "Product (bubble)", StripStyle::Glossy)),
        DefectKind::Stamping => Some((paint_stamping, "Product (stamping)", StripStyle::Brushed)),
        _ => None,
    };
    let Some((painter, name, style)) = dispatch else {
        return Dataset {
            name: format!("Product ({kind:?}: not a Product defect)"),
            task: TaskType::Binary,
            images: Vec::new(),
        };
    };
    // Bubbles are small: a defective image usually carries several.
    let (min_defects, max_defects) = match kind {
        DefectKind::Bubble => (1, 4),
        DefectKind::Scratch => (1, 3),
        _ => (1, 2),
    };
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut images = Vec::with_capacity(spec.n);
    for i in 0..spec.n {
        let defective = i < spec.n_defective;
        let surface_seed = spec.seed.wrapping_mul(37).wrapping_add(i as u64);
        let mut image = strip_styled(surface_seed, spec.width, spec.height, style);
        let difficult = defective && rng.gen_bool(spec.difficult_fraction);
        let mut defect_boxes = Vec::new();
        if defective {
            let magnitude = if difficult {
                rng.gen_range(0.05..0.09)
            } else {
                rng.gen_range(0.25..0.45)
            };
            let count = rng.gen_range(min_defects..=max_defects);
            for _ in 0..count {
                defect_boxes.push(painter(&mut image, &mut rng, -magnitude));
            }
        }
        let noisy = rng.gen_bool(spec.noisy_fraction);
        if noisy {
            image = corrupt_with_noise(&image, surface_seed.wrapping_add(7), &mut rng);
        }
        images.push(LabeledImage {
            image,
            label: usize::from(defective),
            defect_boxes,
            noisy,
            difficult,
        });
    }
    images.shuffle(&mut rng);
    Dataset {
        name: name.to_string(),
        task: TaskType::Binary,
        images,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetKind;

    #[test]
    fn all_three_kinds_generate() {
        for (dk, sk) in [
            (DefectKind::Scratch, DatasetKind::ProductScratch),
            (DefectKind::Bubble, DatasetKind::ProductBubble),
            (DefectKind::Stamping, DatasetKind::ProductStamping),
        ] {
            let spec = DatasetSpec::quick(sk, 3);
            let d = generate(&spec, dk);
            assert_eq!(d.len(), spec.n);
            assert_eq!(d.num_defective(), spec.n_defective);
            assert_eq!(d.task, TaskType::Binary);
        }
    }

    #[test]
    fn crack_is_not_a_product_defect() {
        let spec = DatasetSpec::quick(DatasetKind::ProductScratch, 0);
        let d = generate(&spec, DefectKind::Crack);
        assert_eq!(d.len(), 0);
        assert!(d.name.contains("not a Product defect"));
    }

    #[test]
    fn bubble_images_can_carry_multiple_defects() {
        let spec = DatasetSpec {
            n: 30,
            n_defective: 30,
            ..DatasetSpec::quick(DatasetKind::ProductBubble, 4)
        };
        let d = generate(&spec, DefectKind::Bubble);
        let max_count = d.images.iter().map(|i| i.defect_boxes.len()).max().unwrap();
        assert!(max_count >= 2, "no multi-bubble image in 30 draws");
    }

    #[test]
    fn noisy_flag_matches_spec_rate_roughly() {
        let spec = DatasetSpec {
            n: 200,
            n_defective: 50,
            noisy_fraction: 0.2,
            ..DatasetSpec::quick(DatasetKind::ProductScratch, 5)
        };
        let d = generate(&spec, DefectKind::Scratch);
        let noisy = d.images.iter().filter(|i| i.noisy).count();
        assert!(
            (20..=65).contains(&noisy),
            "expected ~40 noisy images, got {noisy}"
        );
    }

    #[test]
    fn difficult_defects_exist_only_on_defective_images() {
        let spec = DatasetSpec {
            difficult_fraction: 0.5,
            ..DatasetSpec::quick(DatasetKind::ProductStamping, 6)
        };
        let d = generate(&spec, DefectKind::Stamping);
        for img in &d.images {
            if img.difficult {
                assert_eq!(img.label, 1);
            }
        }
        assert!(d.images.iter().any(|i| i.difficult));
    }
}
