//! Chaos experiment: end-to-end fault injection and recovery.
//!
//! Not a paper table — a robustness harness for this reproduction. Two
//! arms run the full pipeline (crowd → augmentation → features → labeler)
//! on the same data and seeds: a *clean* arm under an empty [`FaultPlan`]
//! and a *chaos* arm under [`FaultPlan::chaos`], which injects every fault
//! class the plan supports (no-show and spamming crowdworkers, degenerate
//! patterns, NaN/Inf features, panicking feature workers, poisoned L-BFGS
//! evaluations, a diverging GAN epoch). The chaos arm must still return a
//! trained model; its [`HealthReport`] enumerates every fault detected and
//! the recovery applied.
//!
//! Each arm is a [`RunContext`] clone carrying its own plan: the arms
//! share the run-wide artifact store (dataset generation and test-image
//! preparation happen once), while every plan-sensitive stage keys its
//! cache entries by the plan — the clean arm can never be served a
//! faulted artifact.
//!
//! A third *durability* arm attacks the storage layer instead of the
//! pipeline: every durable-store write runs under
//! [`FaultPlan::durability`]-style injectors (torn writes, flipped bits,
//! stale advisory locks), and a warm restart over the damaged store must
//! quarantine what the checksums reject, recompute it, and land the cold
//! pass's F1 exactly. See [`run_durability_arm`].

use crate::common::{default_policies, f1, gan_config, ExpEnv, Prepared, Report};
use ig_augment::{augment_with_health, AugmentMethod};
use ig_core::{
    DevSet, FaultPlan, HealthEvent, HealthReport, InspectorGadget, MatchBackend, Pattern,
    PatternSource, PipelineConfig, RunContext, ScalePlan,
};
use ig_crowd::{CrowdWorkflow, WorkerModel};
use ig_runtime::{infallible, DiskStats, DiskStore, GenerateDataset};
use ig_synth::spec::{DatasetKind, DatasetSpec};
use serde::Serialize;
use std::path::Path;
use std::sync::Arc;

#[derive(Serialize)]
struct ArmRecord {
    arm: String,
    f1: f64,
    fault_events: usize,
    events: Vec<HealthEvent>,
}

/// Run the chaos experiment.
pub fn run(env: &ExpEnv) {
    let mut report = Report::new("chaos", &env.out);
    report.line("Chaos: fault injection and recovery across the full pipeline");
    report.line(format!("{:<8} {:>8} {:>8}", "arm", "F1", "faults"));
    let kind = DatasetKind::ProductScratch;
    let prepared = Prepared::new(&env.ctx, kind);
    let seed = env.seed();
    let mut records = Vec::new();
    for (arm, plan) in [
        ("clean", FaultPlan::none(seed)),
        ("chaos", FaultPlan::chaos(seed)),
    ] {
        let arm_ctx = env.ctx.clone().with_plan(Some(plan));
        let health = HealthReport::new();
        match run_arm(&arm_ctx, &prepared, kind, &health) {
            Some(score) => {
                report.line(format!("{arm:<8} {score:>8.3} {:>8}", health.len()));
                for line in health.render().lines() {
                    report.line(format!("    {line}"));
                }
                records.push(ArmRecord {
                    arm: arm.to_string(),
                    f1: score,
                    fault_events: health.len(),
                    events: health.events(),
                });
            }
            None => {
                // Even a failed arm explains itself: the health events up
                // to the bail-out point say why the pipeline fell over.
                report.line(format!("{arm:<8} {:>8} (pipeline unavailable)", "-"));
                for line in health.render().lines() {
                    report.line(format!("    {line}"));
                }
            }
        }
    }
    // Third arm: durability chaos. The store directory is rebuilt from
    // scratch every run, so the cold/warm sequence — and hence the event
    // log serialized below — is deterministic and `--resume`-safe.
    let store_dir = std::path::PathBuf::from(&env.out).join("chaos-store");
    match std::fs::remove_dir_all(&store_dir) {
        // Missing on the first run; nothing to clear either way.
        Ok(()) | Err(_) => {}
    }
    let health = HealthReport::new();
    match run_durability_arm(*env.ctx.scale(), seed, &store_dir, &health) {
        Some((cold, warm, disk)) => {
            report.line(format!("{:<8} {warm:>8.3} {:>8}", "durable", health.len()));
            report.line(format!(
                "    cold F1 {cold:.3} vs warm F1 {warm:.3}: {} \
                 (store: {} hits, {} writes, {} quarantined, {} stale locks broken)",
                if cold == warm {
                    "resume is exact"
                } else {
                    "MISMATCH"
                },
                disk.hits,
                disk.writes,
                disk.quarantined,
                disk.locks_broken,
            ));
            for line in health.render().lines() {
                report.line(format!("    {line}"));
            }
            records.push(ArmRecord {
                arm: "durability".to_string(),
                f1: warm,
                fault_events: health.len(),
                events: health.events(),
            });
        }
        None => {
            report.line(format!("{:<8} {:>8} (store unavailable)", "durable", "-"));
        }
    }
    report.finish(&records);
}

/// Datasets seeding the durable store in the durability arm: small and
/// plentiful, so the plan's per-artifact fault draws cover every store
/// fault class without rigging any single artifact.
fn probe_specs() -> Vec<DatasetSpec> {
    (0..12u64)
        .map(|i| DatasetSpec::quick(DatasetKind::ProductBubble, 1000 + i))
        .collect()
}

/// A durability plan whose deterministic per-artifact draws, over the
/// probe artifacts' durable cache keys, fire every store fault class at
/// least once — and leave at least one artifact intact so the warm pass
/// has something to hit.
fn probe_plan(seed: u64, keys: &[u64]) -> FaultPlan {
    (0..10_000u64)
        .map(|i| FaultPlan::durability(seed.wrapping_add(i)))
        .find(|p| {
            keys.iter().any(|&k| p.torn_write(k))
                && keys.iter().any(|&k| p.artifact_bitflip(k))
                && keys.iter().any(|&k| p.stale_lock(k))
                && keys
                    .iter()
                    .any(|&k| !p.torn_write(k) && !p.artifact_bitflip(k))
        })
        .unwrap_or_else(|| FaultPlan::durability(seed))
}

/// The durability arm: the pipeline itself runs fault-free, but every
/// durable-tier write goes through the plan's storage injectors. Two
/// passes share one store directory. The cold pass seeds it — probe
/// datasets plus the pipeline's own artifacts — through the faulted
/// writer; the warm pass starts from a fresh context (as a resumed sweep
/// does after a crash), quarantines every artifact the checksums reject,
/// recomputes, and must reproduce the cold F1 bit for bit. Returns
/// `(cold F1, warm F1, warm-pass disk stats)`; store and pipeline events
/// from both passes accumulate in `health`.
fn run_durability_arm(
    scale: ScalePlan,
    seed: u64,
    store_dir: &Path,
    health: &HealthReport,
) -> Option<(f64, f64, DiskStats)> {
    let specs = probe_specs();
    let keys: Vec<u64> = {
        // Plan-insensitive stages key by (id, fingerprint, seed) only, so
        // a planless context derives the same durable keys the faulted
        // contexts below will write under.
        let keyer = RunContext::new(seed);
        specs
            .iter()
            .map(|&spec| keyer.cache_key_for(&GenerateDataset { spec }).lo)
            .collect()
    };
    let plan = probe_plan(seed, &keys);
    let mut cold = None;
    let mut warm = None;
    let mut stats = DiskStats::default();
    for pass in 0..2 {
        let disk = Arc::new(DiskStore::open(store_dir).ok()?);
        let ctx = RunContext::new(seed)
            .with_scale(scale)
            .with_plan(Some(plan.clone()))
            .with_disk(Arc::clone(&disk));
        for &spec in &specs {
            // The artifact itself is beside the point; writing it through
            // the faulted store (and re-reading it on the warm pass) is.
            let _probe = infallible(ctx.run(&mut GenerateDataset { spec }));
        }
        let prepared = Prepared::new(&ctx, DatasetKind::ProductScratch);
        let score = run_arm(&ctx, &prepared, DatasetKind::ProductScratch, health)?;
        health.absorb(ctx.health());
        if pass == 0 {
            cold = Some(score);
        } else {
            warm = Some(score);
        }
        stats = disk.stats();
    }
    Some((cold?, warm?, stats))
}

/// A five-worker crew: large enough that an injected no-show plus an
/// injected spammer still leave an honest, mutually-corroborating
/// majority for the screening step to lean on.
fn chaos_crew() -> CrowdWorkflow {
    let mut workflow = CrowdWorkflow::full();
    workflow.workers.push(WorkerModel::typical());
    workflow.workers.push(WorkerModel::careful());
    workflow
}

/// One full pipeline run under the context's fault plan. Returns the
/// test-set F1; every stage's fault events are merged into `health` (also
/// on failure, so a bailed-out arm still carries its diagnosis). Training
/// runs through the stage graph ([`InspectorGadget::train_in`]), so the
/// recovery ladders execute inside the runtime and the test-image
/// matching caches come from the shared artifact store.
fn run_arm(
    ctx: &RunContext,
    prepared: &Prepared,
    kind: DatasetKind,
    health: &HealthReport,
) -> Option<f64> {
    let plan = ctx.plan();
    let dev = prepared.dev_images();
    let mut rng = ctx.rng(0);
    let crowd_out = chaos_crew().run_with_health(&dev, &mut rng, plan, health);
    if crowd_out.patterns.is_empty() {
        return None;
    }
    let policies = default_policies(kind);
    let all_patterns = augment_with_health(
        &crowd_out.patterns,
        AugmentMethod::Both,
        ctx.scale().augment_budget,
        &policies,
        &gan_config(ctx.scale()),
        &mut rng,
        plan,
        health,
    );
    let dev_images: Vec<&ig_imaging::GrayImage> = dev.iter().map(|l| &l.image).collect();
    let dev_labels: Vec<usize> = dev.iter().map(|l| l.label).collect();
    let patterns = Pattern::wrap_all(all_patterns, PatternSource::Crowd);
    // Fixed architecture (tuning has its own ladder, exercised in unit
    // tests) and exactly two feature workers so chunk indices — and hence
    // planned worker panics — are stable across machines.
    let config = PipelineConfig {
        backend: MatchBackend::Pyramid,
        tune: false,
        threads: 2,
        ..Default::default()
    };
    let ig = InspectorGadget::train_in(
        ctx,
        patterns,
        DevSet::Raw(&dev_images),
        &dev_labels,
        prepared.num_classes(),
        &config,
        &mut rng,
    )
    .ok()?;
    health.absorb(&ig.health);
    let out = ig.label_prepared_in(ctx, &prepared.test_prepared(ctx));
    let score = f1(prepared.num_classes(), &prepared.test_labels(), &out.labels);
    Some(score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_core::{FaultKind, RecoveryAction, ScalePlan};
    use ig_faults::GanFault;

    /// The acceptance test for the fault subsystem: every fault class the
    /// plan supports fires in one run, training still returns a model, and
    /// the health report enumerates each fault with its recovery.
    #[test]
    fn chaos_run_survives_every_fault_class() {
        // Probe for a plan seed whose deterministic decisions hit exactly
        // one no-show and one spammer in the five-worker crew (leaving an
        // honest majority) and poison the first L-BFGS evaluation.
        let plan = (0..50_000u64)
            .map(|s| FaultPlan {
                seed: s,
                nan_feature_rate: 0.05,
                inf_feature_rate: 0.02,
                degenerate_pattern_rate: 0.3,
                crowd_no_show_rate: 0.25,
                crowd_spammer_rate: 0.25,
                worker_panic_rate: 0.9,
                lbfgs_poison_rate: 0.02,
                torn_write_rate: 0.0,
                artifact_bitflip_rate: 0.0,
                stale_lock_rate: 0.0,
                gan_fault_epoch: Some(1),
                gan_fault: GanFault::Diverge,
            })
            .find(|p| {
                (0..5).filter(|&i| p.crowd_no_show(i)).count() == 1
                    && (0..5).filter(|&i| p.crowd_spammer(i)).count() == 1
                    && p.poison_loss(0)
                    && (0..2).any(|i| p.worker_panic(i))
                    && (0..20).any(|i| p.degenerate_pattern(i))
                    && (0..10).any(|r| (0..10).any(|c| !p.corrupt_feature(r, c, 1.0).is_finite()))
            })
            .expect("some seed hits the target fault pattern");

        let ctx = RunContext::new(7).with_scale(ScalePlan::quick());
        let prepared = Prepared::new(&ctx, DatasetKind::ProductScratch);
        let chaos_ctx = ctx.with_plan(Some(plan));
        let health = HealthReport::new();
        let score = run_arm(&chaos_ctx, &prepared, DatasetKind::ProductScratch, &health)
            .expect("chaos run still trains");
        assert!(score.is_finite());

        for kind in [
            FaultKind::CrowdNoShow,
            FaultKind::CrowdSpammer,
            FaultKind::GanDivergence,
            FaultKind::DegeneratePattern,
            FaultKind::NonFiniteFeature,
            FaultKind::WorkerPanic,
            FaultKind::LbfgsDivergence,
        ] {
            assert!(health.count(kind) >= 1, "no {kind} event recorded");
        }
        for action in [
            RecoveryAction::ExcludedWorker,
            RecoveryAction::RolledBackSnapshot,
            RecoveryAction::QuarantinedPattern,
            RecoveryAction::SanitizedValue,
            RecoveryAction::SerialRecompute,
            RecoveryAction::RestartedWithJitter,
        ] {
            assert!(
                health.count_action(action) >= 1,
                "no {action} recovery recorded"
            );
        }
    }

    /// Empty plan and no plan must be indistinguishable end to end: same
    /// RNG stream, same weak labels, same F1, clean health. The two runs
    /// share one context store — the plan-keyed cache must not leak
    /// either arm's artifacts into the other in a way that changes the
    /// outcome.
    #[test]
    fn empty_plan_leaves_accuracy_unchanged() {
        let ctx = RunContext::new(9).with_scale(ScalePlan::quick());
        let prepared = Prepared::new(&ctx, DatasetKind::ProductScratch);
        let h_none = HealthReport::new();
        let f1_none = run_arm(&ctx, &prepared, DatasetKind::ProductScratch, &h_none)
            .expect("clean run trains");
        let empty_ctx = ctx.clone().with_plan(Some(FaultPlan::none(9)));
        let h_empty = HealthReport::new();
        let f1_empty = run_arm(&empty_ctx, &prepared, DatasetKind::ProductScratch, &h_empty)
            .expect("clean run trains");
        assert_eq!(f1_none, f1_empty, "empty plan changed the outcome");
        assert!(h_none.is_clean() && h_empty.is_clean());
    }

    /// Durability acceptance: with the store under fault injection, every
    /// storage fault class fires, each recovery is recorded, and the warm
    /// (resumed) pass reproduces the cold pass's F1 bit for bit while
    /// actually hitting the durable tier.
    #[test]
    fn durability_arm_survives_store_chaos() {
        let dir = std::env::temp_dir().join(format!("ig-chaos-durable-{}", std::process::id()));
        match std::fs::remove_dir_all(&dir) {
            Ok(()) | Err(_) => {}
        }
        let health = HealthReport::new();
        let (cold, warm, stats) =
            run_durability_arm(ScalePlan::quick(), 7, &dir, &health).expect("durability arm runs");
        assert_eq!(cold, warm, "a resumed sweep must land the identical F1");
        assert!(health.count(FaultKind::ArtifactCorruption) >= 1);
        assert!(health.count(FaultKind::StaleLock) >= 1);
        assert!(health.count_action(RecoveryAction::QuarantinedArtifact) >= 1);
        assert!(health.count_action(RecoveryAction::BrokeStaleLock) >= 1);
        assert!(stats.hits >= 1, "warm pass must hit the durable tier");
        assert!(stats.quarantined >= 1);
        match std::fs::remove_dir_all(&dir) {
            Ok(()) | Err(_) => {}
        }
    }
}
