//! Intra-procedural dataflow over `let`-bound locals.
//!
//! E1 (error-flow) needs to know, for each local bound from a fallible
//! call, whether the value ever *reaches a consumer* — `?`, a `match`/
//! `if let`, a return position, an argument, a method receiver — or whether
//! it is silently dropped. This pass is deliberately simple: it is a
//! name-based use scan within one function body, with no aliasing, shadow
//! tracking beyond "last binding wins per scan", or branch sensitivity.
//! That is enough for the discard patterns E1 targets, and the cost of the
//! simplification is only false *negatives* (shadowed names look used).

use crate::ast::{walk_expr, Block, Expr, ExprKind, FnDecl, LetPat, Stmt};

/// How a `let`-bound local is observed to be consumed in the function body.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UseKind {
    /// `x?` — the error is propagated.
    Propagated,
    /// `match x { .. }` / `if let .. = x` — both arms are visible.
    Matched,
    /// Anything else that reads the name: argument, receiver, field base,
    /// index, arithmetic, return value, struct field, …
    Read,
}

/// The dataflow summary for one `let`-bound local.
#[derive(Debug)]
pub struct LocalFlow<'a> {
    pub name: &'a str,
    /// Token index of the binding identifier (for line lookup).
    pub name_tok: usize,
    /// The initializer expression.
    pub init: &'a Expr,
    /// Every observed use, in source order.
    pub uses: Vec<UseKind>,
}

impl LocalFlow<'_> {
    /// True when the local is never read at all after binding.
    pub fn unused(&self) -> bool {
        self.uses.is_empty()
    }

    /// True when at least one use propagates or matches the value.
    pub fn reaches_sink(&self) -> bool {
        self.uses
            .iter()
            .any(|u| matches!(u, UseKind::Propagated | UseKind::Matched | UseKind::Read))
    }
}

/// Scan one function: collect every named `let` binding with an initializer
/// and every use of that name in the rest of the body.
///
/// Scope approximation: a use anywhere in the function after any binding of
/// the name counts (no shadow/scope splitting). Rules built on this must
/// therefore treat "has uses" as exonerating, never as incriminating.
pub fn local_flows<'a>(f: &'a FnDecl) -> Vec<LocalFlow<'a>> {
    let mut flows: Vec<LocalFlow<'a>> = Vec::new();
    collect_lets(&f.body, &mut flows);
    for flow in &mut flows {
        let mut uses = Vec::new();
        scan_uses_block(&f.body, flow.name, flow.name_tok, &mut uses);
        flow.uses = uses;
    }
    flows
}

fn collect_lets<'a>(b: &'a Block, out: &mut Vec<LocalFlow<'a>>) {
    for s in &b.stmts {
        match s {
            Stmt::Let(l) => {
                if let (LetPat::Name { name, tok }, Some(init)) = (&l.pat, &l.init) {
                    out.push(LocalFlow {
                        name,
                        name_tok: *tok,
                        init,
                        uses: Vec::new(),
                    });
                }
                if let Some(init) = &l.init {
                    collect_lets_in_expr(init, out);
                }
                if let Some(eb) = &l.else_block {
                    collect_lets(eb, out);
                }
            }
            Stmt::Expr(e) => collect_lets_in_expr(&e.expr, out),
            Stmt::Item(_) | Stmt::Empty(_) => {}
        }
    }
}

fn collect_lets_in_expr<'a>(e: &'a Expr, out: &mut Vec<LocalFlow<'a>>) {
    walk_expr(e, &mut |inner| match &inner.kind {
        ExprKind::BlockExpr(b) | ExprKind::Loop { body: b, .. } => collect_lets(b, out),
        ExprKind::If { then, .. } => collect_lets(then, out),
        _ => {}
    });
}

/// Record every use of `name` in `b`, excluding the binding site itself
/// (`binding_tok`).
fn scan_uses_block(b: &Block, name: &str, binding_tok: usize, out: &mut Vec<UseKind>) {
    for s in &b.stmts {
        match s {
            Stmt::Let(l) => {
                if let Some(init) = &l.init {
                    scan_uses_expr(init, name, binding_tok, out);
                }
                if let Some(eb) = &l.else_block {
                    scan_uses_block(eb, name, binding_tok, out);
                }
            }
            Stmt::Expr(e) => scan_uses_expr(&e.expr, name, binding_tok, out),
            Stmt::Item(_) | Stmt::Empty(_) => {}
        }
    }
}

/// Is `e` exactly a one-segment path naming `name`?
fn is_name(e: &Expr, name: &str) -> bool {
    matches!(&e.kind, ExprKind::Path(segs) if matches!(segs.as_slice(), [s] if s == name))
}

fn scan_uses_expr(e: &Expr, name: &str, binding_tok: usize, out: &mut Vec<UseKind>) {
    // Classify *how* the name is used by looking at the parent node, then
    // recurse. `walk_expr` alone can't do this (no parent pointer), so this
    // mirrors its traversal with kind-aware hooks.
    match &e.kind {
        ExprKind::Path(segs) => {
            if matches!(segs.as_slice(), [s] if s == name) && e.span.lo != binding_tok {
                out.push(UseKind::Read);
            }
        }
        ExprKind::Try(inner) => {
            if is_name(inner, name) {
                out.push(UseKind::Propagated);
            } else {
                scan_uses_expr(inner, name, binding_tok, out);
            }
        }
        ExprKind::Match { scrutinee, arms } => {
            if is_name(scrutinee, name) {
                out.push(UseKind::Matched);
            } else {
                scan_uses_expr(scrutinee, name, binding_tok, out);
            }
            for (_, arm) in arms {
                scan_uses_expr(arm, name, binding_tok, out);
            }
        }
        ExprKind::LetCond { expr, .. } => {
            if is_name(expr, name) {
                out.push(UseKind::Matched);
            } else {
                scan_uses_expr(expr, name, binding_tok, out);
            }
        }
        ExprKind::Call { callee, args } => {
            scan_uses_expr(callee, name, binding_tok, out);
            for a in args {
                scan_uses_expr(a, name, binding_tok, out);
            }
        }
        ExprKind::MethodCall { recv, args, .. } => {
            scan_uses_expr(recv, name, binding_tok, out);
            for a in args {
                scan_uses_expr(a, name, binding_tok, out);
            }
        }
        ExprKind::Macro { args, repeat, .. } => {
            for a in args {
                scan_uses_expr(a, name, binding_tok, out);
            }
            if let Some((elem, len)) = repeat {
                scan_uses_expr(elem, name, binding_tok, out);
                scan_uses_expr(len, name, binding_tok, out);
            }
        }
        ExprKind::Unary(inner) | ExprKind::Cast(inner) | ExprKind::Closure { body: inner } => {
            scan_uses_expr(inner, name, binding_tok, out)
        }
        ExprKind::Field { base, .. } => scan_uses_expr(base, name, binding_tok, out),
        ExprKind::Index { base, index } => {
            scan_uses_expr(base, name, binding_tok, out);
            scan_uses_expr(index, name, binding_tok, out);
        }
        ExprKind::Binary { children } => {
            for c in children {
                scan_uses_expr(c, name, binding_tok, out);
            }
        }
        ExprKind::Tuple(items) | ExprKind::Array(items) => {
            for i in items {
                scan_uses_expr(i, name, binding_tok, out);
            }
        }
        ExprKind::Repeat { elem, len } => {
            scan_uses_expr(elem, name, binding_tok, out);
            scan_uses_expr(len, name, binding_tok, out);
        }
        ExprKind::StructLit { fields, .. } => {
            for fe in fields {
                scan_uses_expr(fe, name, binding_tok, out);
            }
        }
        ExprKind::If { cond, then, els } => {
            scan_uses_expr(cond, name, binding_tok, out);
            scan_uses_block(then, name, binding_tok, out);
            if let Some(e) = els {
                scan_uses_expr(e, name, binding_tok, out);
            }
        }
        ExprKind::Loop { body, .. } => scan_uses_block(body, name, binding_tok, out),
        ExprKind::BlockExpr(b) => scan_uses_block(b, name, binding_tok, out),
        ExprKind::Jump(Some(inner)) => scan_uses_expr(inner, name, binding_tok, out),
        ExprKind::Jump(None) | ExprKind::Lit { .. } | ExprKind::Opaque => {}
    }
}

// ---- fallibility --------------------------------------------------------

/// Method/function names treated as fallible wherever they appear. Kept to
/// names whose std/workspace meaning is unambiguous; `write!`/`writeln!`
/// are deliberately absent (formatting into a `String` cannot fail and
/// `let _ = write!(..)` is the idiomatic discard).
pub const KNOWN_FALLIBLE: &[&str] = &[
    "parse",
    "open",
    "create",
    "write_all",
    "read_to_string",
    "read_exact",
    "remove_file",
    "create_dir_all",
    "flush",
    "lock",
    "recv",
    "send",
    "from_str",
];

/// Chain links that demonstrate the error was looked at — a chain carrying
/// one of these is never flagged by E1 or rewritten by the fixer.
pub const ERROR_HANDLED: &[&str] = &[
    "map_err",
    "inspect_err",
    "unwrap_or_else",
    "or_else",
    "ok_or",
    "ok_or_else",
    "map_or_else",
    "expect",
    "unwrap",
];

use crate::ast::ReturnKind;
use std::collections::BTreeMap;

pub fn is_fallible_name(name: &str, sigs: &BTreeMap<&str, ReturnKind>) -> bool {
    if name.starts_with("try_") || KNOWN_FALLIBLE.contains(&name) {
        return true;
    }
    matches!(
        sigs.get(name),
        Some(ReturnKind::Result | ReturnKind::Option)
    )
}

/// Is `e` a call/method-call whose result is provably fallible?
pub fn is_fallible_call(e: &Expr, sigs: &BTreeMap<&str, ReturnKind>) -> bool {
    match &e.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) => segs.last().is_some_and(|s| is_fallible_name(s, sigs)),
            _ => false,
        },
        ExprKind::MethodCall { recv, method, .. } => {
            is_fallible_name(method, sigs) || is_fallible_call(recv, sigs)
        }
        ExprKind::Try(inner) | ExprKind::Unary(inner) | ExprKind::Cast(inner) => {
            is_fallible_call(inner, sigs)
        }
        _ => false,
    }
}

/// Like [`is_fallible_call`], but provably `Result`-producing — the fixer
/// needs this distinction because `?` on an `Option` does not compile in a
/// `Result` function. Same-file `Option` returns are excluded; the
/// known-fallible list is `Result`-flavored by construction.
pub fn is_result_call(e: &Expr, sigs: &BTreeMap<&str, ReturnKind>) -> bool {
    fn result_name(name: &str, sigs: &BTreeMap<&str, ReturnKind>) -> bool {
        if name.starts_with("try_") || KNOWN_FALLIBLE.contains(&name) {
            return true;
        }
        matches!(sigs.get(name), Some(ReturnKind::Result))
    }
    match &e.kind {
        ExprKind::Call { callee, .. } => match &callee.kind {
            ExprKind::Path(segs) => segs.last().is_some_and(|s| result_name(s, sigs)),
            _ => false,
        },
        ExprKind::MethodCall { recv, method, .. } => {
            result_name(method, sigs) || is_result_call(recv, sigs)
        }
        ExprKind::Try(inner) | ExprKind::Unary(inner) | ExprKind::Cast(inner) => {
            is_result_call(inner, sigs)
        }
        _ => false,
    }
}

/// Does the chain contain a link that handles the error?
pub fn chain_is_handled(e: &Expr) -> bool {
    chain_methods(e).iter().any(|m| ERROR_HANDLED.contains(m))
}

// ---- method-chain helpers ----------------------------------------------

/// Walk to the root of a method chain: `a.b().c()?` → the expression `a`.
pub fn chain_root(e: &Expr) -> &Expr {
    match &e.kind {
        ExprKind::MethodCall { recv, .. } => chain_root(recv),
        ExprKind::Try(inner) | ExprKind::Unary(inner) | ExprKind::Cast(inner) => chain_root(inner),
        ExprKind::Field { base, .. } => chain_root(base),
        ExprKind::Index { base, .. } => chain_root(base),
        _ => e,
    }
}

/// Collect method names along a chain, root-first:
/// `a.open()?.read().ok()` → `["open", "read", "ok"]`.
pub fn chain_methods(e: &Expr) -> Vec<&str> {
    let mut out = Vec::new();
    collect_chain(e, &mut out);
    out
}

fn collect_chain<'a>(e: &'a Expr, out: &mut Vec<&'a str>) {
    match &e.kind {
        ExprKind::MethodCall { recv, method, .. } => {
            collect_chain(recv, out);
            out.push(method);
        }
        ExprKind::Try(inner) | ExprKind::Unary(inner) | ExprKind::Cast(inner) => {
            collect_chain(inner, out)
        }
        ExprKind::Field { base, .. } | ExprKind::Index { base, .. } => collect_chain(base, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::lexer::lex;

    fn flows_of(src: &str) -> usize {
        let ast = parse(&lex(src).tokens);
        assert!(ast.clean(), "errors: {:?}", ast.errors);
        local_flows(&ast.fns[0]).len()
    }

    #[test]
    fn named_lets_are_collected_including_nested_blocks() {
        let n = flows_of(
            "fn f() {\n\
               let a = g();\n\
               if c { let b = h(); }\n\
               for _ in 0..2 { let c = i(); }\n\
             }\n",
        );
        assert_eq!(n, 3);
    }

    #[test]
    fn unused_local_has_no_uses() {
        let src = "fn f() { let r = fallible(); }\n";
        let ast = parse(&lex(src).tokens);
        let flows = local_flows(&ast.fns[0]);
        assert_eq!(flows.len(), 1);
        assert!(flows[0].unused());
    }

    #[test]
    fn try_operator_counts_as_propagation() {
        let src = "fn f() -> Result<(), E> { let r = fallible(); r?; Ok(()) }\n";
        let ast = parse(&lex(src).tokens);
        let flows = local_flows(&ast.fns[0]);
        assert_eq!(flows[0].uses, vec![UseKind::Propagated]);
    }

    #[test]
    fn match_counts_as_matched() {
        let src = "fn f() { let r = fallible(); match r { Ok(_) => {}, Err(_) => {} } }\n";
        let ast = parse(&lex(src).tokens);
        let flows = local_flows(&ast.fns[0]);
        assert_eq!(flows[0].uses, vec![UseKind::Matched]);
    }

    #[test]
    fn if_let_counts_as_matched() {
        let src = "fn f() { let r = fallible(); if let Err(e) = r { log(e); } }\n";
        let ast = parse(&lex(src).tokens);
        let flows = local_flows(&ast.fns[0]);
        assert_eq!(flows[0].uses, vec![UseKind::Matched]);
    }

    #[test]
    fn argument_use_counts_as_read() {
        let src = "fn f() { let r = fallible(); consume(r); }\n";
        let ast = parse(&lex(src).tokens);
        let flows = local_flows(&ast.fns[0]);
        assert_eq!(flows[0].uses, vec![UseKind::Read]);
    }

    #[test]
    fn binding_site_is_not_a_use() {
        // `let r = r_like();` — the initializer mentions a *different* path.
        let src = "fn f() { let r = make(); let s = r.clone(); }\n";
        let ast = parse(&lex(src).tokens);
        let flows = local_flows(&ast.fns[0]);
        let r = flows.iter().find(|f| f.name == "r").expect("r flow");
        assert_eq!(r.uses, vec![UseKind::Read]);
        let s = flows.iter().find(|f| f.name == "s").expect("s flow");
        assert!(s.unused());
    }

    #[test]
    fn chain_helpers_walk_method_chains() {
        let src = "fn f() { let x = file.open(p)?.read().ok(); }\n";
        let ast = parse(&lex(src).tokens);
        let flows = local_flows(&ast.fns[0]);
        let init = flows[0].init;
        assert_eq!(chain_methods(init), vec!["open", "read", "ok"]);
        assert!(matches!(
            &chain_root(init).kind,
            ExprKind::Path(p) if p == &["file"]
        ));
    }
}
