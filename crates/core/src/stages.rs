//! The training pipeline as [`ig_runtime`] stages.
//!
//! [`crate::InspectorGadget::train_in`] wires these together: pattern
//! bank → [`BuildFeatureGen`] → [`ComputeFeatures`] (dev matrix) →
//! [`TrainLabeler`]. The first two are deterministic functions of their
//! fingerprinted inputs and memoize in the context's artifact store;
//! the labeler stage consumes the caller's RNG and therefore never
//! caches.

use core::convert::Infallible;

use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction, Stage as FaultStage};
use ig_imaging::prepared::PreparedImage;
use ig_imaging::GrayImage;
use ig_nn::Matrix;
use ig_runtime::{
    Durable, Fingerprint, FingerprintHasher, Fingerprintable, RunContext, ShardSpec, Stage,
};
use rand::Rng;

use crate::features::{FeatureGenerator, MatchBackend};
use crate::labeler::{Labeler, LabelerConfig};
use crate::pattern::{Pattern, PatternSource};
use crate::pipeline::PipelineConfig;
use crate::tuning::{tune_labeler_with_health, TuningReport};
use crate::{CoreError, Result};

impl Fingerprintable for Pattern {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        self.image.fingerprint_into(h);
        h.write_u64(match self.source {
            PatternSource::Crowd => 0,
            PatternSource::Policy => 1,
            PatternSource::Gan => 2,
        });
    }
}

/// A development (or any labeling) batch in either representation.
///
/// Raw images are prepared on the fly by the matching engine; prepared
/// images carry their pyramid/integral caches. The two produce
/// bit-identical feature matrices (pinned by
/// `train_prepared_matches_unprepared_training`), so which one flows in
/// is purely a performance choice.
#[derive(Debug, Clone, Copy)]
pub enum DevSet<'a> {
    /// Plain images.
    Raw(&'a [&'a GrayImage]),
    /// Images with prebuilt matching caches.
    Prepared(&'a [PreparedImage]),
}

impl DevSet<'_> {
    /// Number of images in the batch.
    pub fn len(&self) -> usize {
        match self {
            DevSet::Raw(images) => images.len(),
            DevSet::Prepared(images) => images.len(),
        }
    }

    /// True when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Fingerprintable for DevSet<'_> {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        match self {
            DevSet::Raw(images) => {
                h.write_usize(images.len());
                for image in *images {
                    image.fingerprint_into(h);
                }
            }
            DevSet::Prepared(images) => {
                h.write_usize(images.len());
                for image in *images {
                    image.fingerprint_into(h);
                }
            }
        }
    }
}

/// Fingerprint of a pattern bank under a pipeline config: everything
/// [`BuildFeatureGen`] reads that can change the generator it builds.
pub fn bank_fingerprint(
    patterns: &[Pattern],
    config: &PipelineConfig,
    ctx: &RunContext,
) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    patterns.fingerprint_into(&mut h);
    h.write_u64(match config.backend {
        MatchBackend::Exact => 0,
        MatchBackend::Pyramid => 1,
    });
    h.write_usize(effective_threads(config, ctx));
    h.finish()
}

/// Worker threads a stage should use: an explicit config wins, then the
/// context budget, then the hardware default (0).
fn effective_threads(config: &PipelineConfig, ctx: &RunContext) -> usize {
    if config.threads > 0 {
        config.threads
    } else {
        ctx.threads()
    }
}

/// Build the [`FeatureGenerator`]: quarantine degenerate patterns and
/// prepare the pattern bank for batched matching.
#[derive(Debug)]
pub struct BuildFeatureGen<'a> {
    fp: Fingerprint,
    patterns: Option<Vec<Pattern>>,
    config: &'a PipelineConfig,
    health: &'a HealthReport,
}

impl<'a> BuildFeatureGen<'a> {
    /// Stage over an owned pattern bank (consumed on the first run).
    pub fn new(
        patterns: Vec<Pattern>,
        config: &'a PipelineConfig,
        health: &'a HealthReport,
        ctx: &RunContext,
    ) -> BuildFeatureGen<'a> {
        BuildFeatureGen {
            fp: bank_fingerprint(&patterns, config, ctx),
            patterns: Some(patterns),
            config,
            health,
        }
    }

    /// The bank fingerprint this stage was keyed with.
    pub fn bank_fp(&self) -> Fingerprint {
        self.fp
    }
}

impl Stage for BuildFeatureGen<'_> {
    type Output = FeatureGenerator;
    type Error = CoreError;

    fn id(&self) -> &'static str {
        "core.feature_gen"
    }

    fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    fn run(&mut self, ctx: &RunContext) -> Result<FeatureGenerator> {
        let patterns = self.patterns.take().ok_or(CoreError::NoPatterns)?;
        let mut feature_gen = FeatureGenerator::new_with_health(patterns, ctx.plan(), self.health)?
            .with_backend(self.config.backend);
        let threads = effective_threads(self.config, ctx);
        if threads > 0 {
            feature_gen = feature_gen.with_threads(threads);
        }
        Ok(feature_gen)
    }
}

/// Run the matching engine: one similarity feature per (image, pattern).
///
/// The fault plan is an explicit field rather than being read from the
/// context, because training injects into the dev matrix while labeling
/// never injects — and the constructor folds the plan into the cache
/// fingerprint, so the stage opts out of the runtime's automatic plan
/// keying ([`Stage::plan_sensitive`] is false).
#[derive(Debug)]
pub struct ComputeFeatures<'a> {
    fp: Fingerprint,
    generator: &'a FeatureGenerator,
    images: DevSet<'a>,
    plan: Option<&'a FaultPlan>,
    health: &'a HealthReport,
}

impl<'a> ComputeFeatures<'a> {
    /// Stage computing features of `images` under `generator` (identified
    /// by `bank_fp` — the generator must be the one built from it).
    pub fn new(
        bank_fp: Fingerprint,
        generator: &'a FeatureGenerator,
        images: DevSet<'a>,
        plan: Option<&'a FaultPlan>,
        health: &'a HealthReport,
    ) -> ComputeFeatures<'a> {
        let mut h = FingerprintHasher::new();
        bank_fp.fingerprint_into(&mut h);
        images.fingerprint_into(&mut h);
        plan.fingerprint_into(&mut h);
        ComputeFeatures {
            fp: h.finish(),
            generator,
            images,
            plan,
            health,
        }
    }
}

impl Stage for ComputeFeatures<'_> {
    type Output = Matrix;
    type Error = Infallible;

    fn id(&self) -> &'static str {
        "core.features"
    }

    fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    fn plan_sensitive(&self) -> bool {
        false // the constructor already folded the plan in
    }

    // Clean matrices persist (see `encode`), so a disk miss is worth a
    // cross-process single-flight claim; faulted runs never persist and
    // must not take one.
    fn durable(&self) -> bool {
        !self.plan.is_some_and(|p| !p.is_empty())
    }

    fn run(&mut self, _ctx: &RunContext) -> std::result::Result<Matrix, Infallible> {
        Ok(match self.images {
            DevSet::Raw(images) => {
                // ig-lint: allow(fingerprint-completeness) -- keyed by proxy:
                // `new()` documents that `generator` must be the one built
                // from `bank_fp`, and `bank_fp` is folded into `self.fp`
                self.generator
                    .feature_matrix_with_health(images, self.plan, self.health)
            }
            DevSet::Prepared(images) => {
                self.generator
                    .feature_matrix_prepared_with_health(images, self.plan, self.health)
            }
        })
    }

    // Feature matrices are the expensive artifact a resumed sweep most
    // wants back. Only clean computations persist: a matrix computed
    // under an active plan embeds injected faults whose *detection*
    // events must replay on every run — reading it back from disk would
    // skip the injection sites and desynchronize the health report.
    fn encode(&self, output: &Matrix) -> Option<Vec<u8>> {
        if self.plan.is_some_and(|p| !p.is_empty()) {
            return None;
        }
        Some(output.to_bytes())
    }

    fn decode(&self, bytes: &[u8]) -> Option<Matrix> {
        if self.plan.is_some_and(|p| !p.is_empty()) {
            return None;
        }
        Matrix::from_bytes(bytes)
    }
}

/// One shard of [`ComputeFeatures`]: the matching engine over a slice
/// of prepared images, producing the corresponding rows of the matrix.
///
/// The out-of-core tier streams the dev set through this stage one
/// budget-sized shard at a time, dropping each shard's prepared caches
/// once its rows are written. Row coordinates stay global — the
/// constructor offsets the engine's fault ladder by `shard.start` — so
/// concatenating every shard's rows in index order reproduces the
/// monolithic matrix bit-identically under any fault plan.
#[derive(Debug)]
pub struct ComputeFeatureShard<'a> {
    fp: Fingerprint,
    generator: &'a FeatureGenerator,
    images: &'a [PreparedImage],
    row_offset: usize,
    plan: Option<&'a FaultPlan>,
    health: &'a HealthReport,
}

impl<'a> ComputeFeatureShard<'a> {
    /// Stage computing `shard`'s rows of the feature matrix. `images` is
    /// the shard's slice of the prepared dev set (`shard.len()` images
    /// whose first global row is `shard.start`), and `generator` must be
    /// the one built from `bank_fp`.
    pub fn new(
        bank_fp: Fingerprint,
        generator: &'a FeatureGenerator,
        images: &'a [PreparedImage],
        shard: ShardSpec,
        plan: Option<&'a FaultPlan>,
        health: &'a HealthReport,
    ) -> ComputeFeatureShard<'a> {
        // Hashing the generator's arity keeps the key honest if a bank
        // fingerprint were ever paired with a generator of a different
        // width — the artifact's column count is part of its identity.
        // The shard's global row offset is likewise part of the key: two
        // shards of equal content at different positions fault-ladder
        // differently.
        let cols = generator.num_features();
        let row_offset = shard.start;
        let mut h = FingerprintHasher::new();
        bank_fp.fingerprint_into(&mut h);
        h.write_usize(cols);
        h.write_usize(row_offset);
        DevSet::Prepared(images).fingerprint_into(&mut h);
        plan.fingerprint_into(&mut h);
        ComputeFeatureShard {
            fp: h.finish().mix(shard.fingerprint()),
            generator,
            images,
            row_offset,
            plan,
            health,
        }
    }
}

impl Stage for ComputeFeatureShard<'_> {
    type Output = Matrix;
    type Error = Infallible;

    fn id(&self) -> &'static str {
        "core.features.shard"
    }

    fn fingerprint(&self) -> Fingerprint {
        self.fp
    }

    fn plan_sensitive(&self) -> bool {
        false // the constructor already folded the plan in
    }

    // Shard rows are exactly what a resumed out-of-core sweep wants
    // back, and each is expensive enough to be worth the cross-process
    // single-flight claim. Same clean-runs-only rule as
    // [`ComputeFeatures::encode`].
    fn durable(&self) -> bool {
        !self.plan.is_some_and(|p| !p.is_empty())
    }

    fn run(&mut self, _ctx: &RunContext) -> std::result::Result<Matrix, Infallible> {
        Ok(self.generator.feature_matrix_prepared_offset_with_health(
            self.images,
            self.row_offset,
            self.plan,
            self.health,
        ))
    }

    fn encode(&self, output: &Matrix) -> Option<Vec<u8>> {
        if self.plan.is_some_and(|p| !p.is_empty()) {
            return None;
        }
        Some(output.to_bytes())
    }

    fn decode(&self, bytes: &[u8]) -> Option<Matrix> {
        if self.plan.is_some_and(|p| !p.is_empty()) {
            return None;
        }
        Matrix::from_bytes(bytes)
    }
}

/// Tune (or fit fixed) and train the labeler on a dev feature matrix.
///
/// Consumes the caller's RNG — externally-seeded state the store cannot
/// fingerprint — so this stage never caches; two runs with equal inputs
/// but different RNG positions are different computations.
#[derive(Debug)]
pub struct TrainLabeler<'a, R: Rng> {
    /// Dev feature matrix (images × patterns).
    pub features: &'a Matrix,
    /// Gold labels of the dev set.
    pub dev_labels: &'a [usize],
    /// Number of task classes.
    pub num_classes: usize,
    /// Pipeline configuration (tuning switch, fixed architecture).
    pub config: &'a PipelineConfig,
    /// Caller's RNG, advanced by tuning/initialization.
    pub rng: &'a mut R,
    /// Per-call health sink.
    pub health: &'a HealthReport,
}

impl<R: Rng> Stage for TrainLabeler<'_, R> {
    type Output = (Labeler, Option<TuningReport>);
    type Error = CoreError;

    fn id(&self) -> &'static str {
        "core.train_labeler"
    }

    fn fingerprint(&self) -> Fingerprint {
        Fingerprint::null() // never consulted: the stage is not cacheable
    }

    fn cacheable(&self) -> bool {
        false
    }

    fn run(&mut self, ctx: &RunContext) -> Result<(Labeler, Option<TuningReport>)> {
        let plan = ctx.plan();
        if self.config.tune {
            match tune_labeler_with_health(
                self.features,
                self.dev_labels,
                self.num_classes,
                &self.config.tuning,
                self.rng,
                Some(self.health),
            ) {
                Ok((labeler, report)) => Ok((labeler, Some(report))),
                Err(e) => {
                    self.health.record(
                        FaultStage::Tuning,
                        FaultKind::TuningFailure,
                        RecoveryAction::FallbackFixedArchitecture,
                        format!(
                            "tuning failed ({e}); training fixed {:?}",
                            self.config.fixed_hidden
                        ),
                    );
                    let labeler = fit_fixed_or_prior(
                        self.features,
                        self.dev_labels,
                        self.num_classes,
                        self.config,
                        self.rng,
                        plan,
                        self.health,
                    )?;
                    Ok((labeler, None))
                }
            }
        } else {
            let labeler = fit_fixed_or_prior(
                self.features,
                self.dev_labels,
                self.num_classes,
                self.config,
                self.rng,
                plan,
                self.health,
            )?;
            Ok((labeler, None))
        }
    }
}

/// Rungs 2 and 3 of the training recovery ladder: fit the fixed fallback
/// architecture; if that fails too, degrade to the class-prior labeler.
#[allow(clippy::too_many_arguments)]
fn fit_fixed_or_prior(
    features: &Matrix,
    dev_labels: &[usize],
    num_classes: usize,
    config: &PipelineConfig,
    rng: &mut impl Rng,
    plan: Option<&FaultPlan>,
    health: &HealthReport,
) -> Result<Labeler> {
    let fixed = Labeler::new(
        features.cols(),
        LabelerConfig {
            hidden: config.fixed_hidden.clone(),
            num_classes,
            l2: config.tuning.l2,
            lbfgs: config.tuning.lbfgs,
        },
        rng,
    )
    .and_then(|mut labeler| {
        labeler.fit_with_plan(features, dev_labels, plan, Some(health))?;
        Ok(labeler)
    });
    match fixed {
        Ok(labeler) => Ok(labeler),
        Err(e) => {
            health.record(
                FaultStage::Training,
                FaultKind::TrainingFailure,
                RecoveryAction::FallbackClassPrior,
                format!("fixed-architecture fit failed ({e}); using class priors"),
            );
            Labeler::class_prior(
                features.cols(),
                LabelerConfig {
                    hidden: Vec::new(),
                    num_classes,
                    l2: config.tuning.l2,
                    lbfgs: config.tuning.lbfgs,
                },
                dev_labels,
                rng,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_fingerprint_tracks_source() {
        let img = GrayImage::filled(5, 5, 0.2);
        let crowd = Pattern::crowd(img.clone());
        let policy = Pattern::augmented(img, PatternSource::Policy);
        assert_ne!(crowd.fingerprint(), policy.fingerprint());
    }

    #[test]
    fn bank_fingerprint_tracks_backend_and_threads() {
        let ctx = RunContext::new(0);
        let patterns = vec![Pattern::crowd(GrayImage::filled(4, 4, 0.3))];
        let base = PipelineConfig::default();
        let exact = PipelineConfig {
            backend: MatchBackend::Exact,
            ..base.clone()
        };
        let threaded = PipelineConfig {
            threads: 3,
            ..base.clone()
        };
        let fp = bank_fingerprint(&patterns, &base, &ctx);
        assert_ne!(fp, bank_fingerprint(&patterns, &exact, &ctx));
        assert_ne!(fp, bank_fingerprint(&patterns, &threaded, &ctx));
        assert_eq!(fp, bank_fingerprint(&patterns, &base, &ctx));
    }

    #[test]
    fn compute_features_persists_only_clean_runs() {
        let health = HealthReport::new();
        let patterns = vec![Pattern::crowd(GrayImage::filled(4, 4, 0.3))];
        let generator = match FeatureGenerator::new_with_health(patterns, None, &health) {
            Ok(g) => g,
            Err(e) => {
                assert!(false, "generator build failed: {e}");
                return;
            }
        };
        let images = [GrayImage::filled(6, 6, 0.5)];
        let refs: Vec<&GrayImage> = images.iter().collect();
        let matrix = Matrix::from_vec(1, 1, vec![0.5]);
        let bank = Fingerprint::null();

        let clean = ComputeFeatures::new(bank, &generator, DevSet::Raw(&refs), None, &health);
        let bytes = clean.encode(&matrix);
        assert!(bytes.is_some(), "clean features persist");
        let decoded = bytes.as_deref().and_then(|b| clean.decode(b));
        assert_eq!(
            decoded.as_ref().map(Matrix::as_slice),
            Some(matrix.as_slice()),
            "round trip is bit-identical"
        );

        let plan = FaultPlan::chaos(1);
        let faulted =
            ComputeFeatures::new(bank, &generator, DevSet::Raw(&refs), Some(&plan), &health);
        assert!(
            faulted.encode(&matrix).is_none(),
            "faulted features must replay their injection sites, not persist"
        );
        assert!(bytes.as_deref().and_then(|b| faulted.decode(b)).is_none());

        let empty_plan = FaultPlan::none(1);
        let benign = ComputeFeatures::new(
            bank,
            &generator,
            DevSet::Raw(&refs),
            Some(&empty_plan),
            &health,
        );
        assert!(
            benign.encode(&matrix).is_some(),
            "an empty plan injects nothing and may persist"
        );
    }

    #[test]
    fn dev_set_len_covers_both_representations() {
        let images = [GrayImage::filled(6, 6, 0.5)];
        let refs: Vec<&GrayImage> = images.iter().collect();
        let raw = DevSet::Raw(&refs);
        assert_eq!(raw.len(), 1);
        assert!(!raw.is_empty());
        let prepared: Vec<PreparedImage> = Vec::new();
        assert!(DevSet::Prepared(&prepared).is_empty());
    }
}
