//! S1 fixture: literal shape contracts the parser can prove.

pub fn wrong_shapes(img: &GrayImage) {
    let a = Matrix::from_vec(2, 3, vec![0.0; 5]);
    let b = Matrix::from_vec(2, 2, vec![0.0, 1.0, 2.0]);
    let t = Tensor4::from_vec(1, 2, 2, 2, vec![0.0; 9]);
    let r = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    let z = resize_bilinear(img, 0, 10);
    consume(a, b, t, r, z);
}

pub fn correct_shapes(img: &GrayImage, n: usize) {
    let a = Matrix::from_vec(2, 3, vec![0.0; 6]);
    let d = Matrix::from_vec(n, 3, vec![0.0; 6]);
    let r = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
    let z = resize_bilinear(img, 4, 4);
    consume(a, d, r, z);
}

pub fn deliberate_mismatch() {
    // ig-lint: allow(shape-contract) -- exercises the runtime check
    let bad = Matrix::from_vec(2, 2, vec![0.0; 3]);
    consume(bad);
}
