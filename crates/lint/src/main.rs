//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p ig-lint -- check [--root DIR] [--report PATH] [--baseline PATH] [--quiet]
//! cargo run -p ig-lint -- fix [--root DIR] [--dry-run]
//! cargo run -p ig-lint -- baseline [--root DIR] [--budget N] [--out PATH]
//! cargo run -p ig-lint -- callgraph [--root DIR] [--out PATH]
//! cargo run -p ig-lint -- threads [--root DIR] [--out PATH]
//! cargo run -p ig-lint -- rules [--markdown] [--check [--readme PATH]]
//! ```
//!
//! `check` exits 0 when the workspace upholds every invariant, 1 when any
//! violation (including a malformed allow annotation or a busted
//! suppression budget) survives, and 2 on usage or I/O errors. A
//! machine-readable report is written to `results/lint_report.json` unless
//! `--report` overrides the path.
//!
//! `fix` applies the mechanical E1 rewrites (see `fix.rs`) in place;
//! `--dry-run` prints the plan without touching files. `baseline`
//! regenerates the committed suppression-debt record from the current
//! workspace state. `callgraph` dumps the byte-stable workspace call
//! graph; `threads` dumps the thread topology (every spawn site with its
//! closure-capture escape set) the same way — both are committed under
//! `results/` and drift-checked in CI. `rules --markdown` prints the
//! catalog as a markdown table, and
//! `rules --check` fails when the `README.md` rule table (the block
//! between the `<!-- ig-lint-rules -->` markers) has drifted from it.

use std::path::PathBuf;
use std::process::ExitCode;

use ig_lint::baseline::Baseline;
use ig_lint::report::Report;
use ig_lint::rules::rule_catalog;

struct CheckOpts {
    root: PathBuf,
    report_path: PathBuf,
    baseline_path: Option<PathBuf>,
    quiet: bool,
}

struct FixOpts {
    root: PathBuf,
    dry_run: bool,
}

struct BaselineOpts {
    root: PathBuf,
    budget: Option<usize>,
    out: PathBuf,
}

struct CallgraphOpts {
    root: PathBuf,
    out: PathBuf,
}

struct ThreadsOpts {
    root: PathBuf,
    out: PathBuf,
}

struct RulesOpts {
    markdown: bool,
    check: bool,
    readme: PathBuf,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match parse_check_opts(&args[1..]) {
            Ok(opts) => run_check(&opts),
            Err(e) => usage_error(&e),
        },
        Some("fix") => match parse_fix_opts(&args[1..]) {
            Ok(opts) => run_fix(&opts),
            Err(e) => usage_error(&e),
        },
        Some("baseline") => match parse_baseline_opts(&args[1..]) {
            Ok(opts) => run_baseline(&opts),
            Err(e) => usage_error(&e),
        },
        Some("callgraph") => match parse_callgraph_opts(&args[1..]) {
            Ok(opts) => run_callgraph(&opts),
            Err(e) => usage_error(&e),
        },
        Some("threads") => match parse_threads_opts(&args[1..]) {
            Ok(opts) => run_threads(&opts),
            Err(e) => usage_error(&e),
        },
        Some("rules") => match parse_rules_opts(&args[1..]) {
            Ok(opts) => run_rules(&opts),
            Err(e) => usage_error(&e),
        },
        Some(other) => usage_error(&format!("unknown command `{other}`")),
        None => usage_error("missing command"),
    }
}

const USAGE: &str = "usage: ig-lint check [--root DIR] [--report PATH] [--baseline PATH] [--quiet]\n       ig-lint fix [--root DIR] [--dry-run]\n       ig-lint baseline [--root DIR] [--budget N] [--out PATH]\n       ig-lint callgraph [--root DIR] [--out PATH]\n       ig-lint threads [--root DIR] [--out PATH]\n       ig-lint rules [--markdown] [--check [--readme PATH]]";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("ig-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn parse_check_opts(args: &[String]) -> Result<CheckOpts, String> {
    let mut opts = CheckOpts {
        root: PathBuf::from("."),
        report_path: PathBuf::from("results/lint_report.json"),
        baseline_path: None,
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                opts.root = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root requires a directory")?;
            }
            "--report" => {
                opts.report_path = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--report requires a path")?;
            }
            "--baseline" => {
                opts.baseline_path = Some(
                    it.next()
                        .map(PathBuf::from)
                        .ok_or("--baseline requires a path")?,
                );
            }
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_fix_opts(args: &[String]) -> Result<FixOpts, String> {
    let mut opts = FixOpts {
        root: PathBuf::from("."),
        dry_run: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                opts.root = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root requires a directory")?;
            }
            "--dry-run" => opts.dry_run = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_baseline_opts(args: &[String]) -> Result<BaselineOpts, String> {
    let mut opts = BaselineOpts {
        root: PathBuf::from("."),
        budget: None,
        out: PathBuf::from("results/lint_baseline.json"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                opts.root = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root requires a directory")?;
            }
            "--budget" => {
                let n = it.next().ok_or("--budget requires a number")?;
                opts.budget = Some(n.parse().map_err(|_| format!("bad budget `{n}`"))?);
            }
            "--out" => {
                opts.out = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--out requires a path")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn run_check(opts: &CheckOpts) -> ExitCode {
    let report = match ig_lint::check_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ig-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        for d in &report.violations {
            eprintln!("{}\n", d.render());
        }
    }

    if let Err(e) = write_report(&report, opts) {
        eprintln!(
            "ig-lint: writing report {}: {e}",
            opts.report_path.display()
        );
        return ExitCode::from(2);
    }

    // Suppression-debt budget: live allow count vs. the committed ceiling.
    let mut budget_failures = Vec::new();
    if let Some(path) = &opts.baseline_path {
        match std::fs::read_to_string(path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(baseline) => budget_failures = baseline.enforce(&report),
                Err(e) => {
                    eprintln!("ig-lint: baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("ig-lint: reading baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        }
    }
    for f in &budget_failures {
        eprintln!("ig-lint: {f}");
    }

    let counts = report.counts();
    let summary: Vec<String> = counts.iter().map(|(r, n)| format!("{r}: {n}")).collect();
    if report.violations.is_empty() && budget_failures.is_empty() {
        if !opts.quiet {
            println!(
                "ig-lint: {} files clean, {} allow annotation(s) on record",
                report.files_scanned,
                report.allows.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        if !report.violations.is_empty() {
            eprintln!(
                "ig-lint: {} violation(s) in {} files scanned ({})",
                report.violations.len(),
                report.files_scanned,
                summary.join(", ")
            );
        }
        ExitCode::FAILURE
    }
}

fn run_fix(opts: &FixOpts) -> ExitCode {
    let files = match ig_lint::collect_rs_files(&opts.root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ig-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    let mut total = 0usize;
    for path in &files {
        let rel = path
            .strip_prefix(&opts.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("ig-lint: reading {rel}: {e}");
                return ExitCode::from(2);
            }
        };
        let edits = ig_lint::fix::plan_fixes(&rel, &src, None);
        if edits.is_empty() {
            continue;
        }
        for e in &edits {
            println!("{rel}:{}: {}", e.line, e.note);
        }
        total += edits.len();
        if !opts.dry_run {
            let fixed = ig_lint::fix::apply_fixes(&src, &edits);
            if let Err(e) = std::fs::write(path, fixed) {
                eprintln!("ig-lint: writing {rel}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "ig-lint: {total} fix(es) {}",
        if opts.dry_run { "planned" } else { "applied" }
    );
    ExitCode::SUCCESS
}

fn run_baseline(opts: &BaselineOpts) -> ExitCode {
    let report = match ig_lint::check_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ig-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    // Default budget: current debt — growth fails immediately, shrink is
    // always welcome.
    let budget = opts.budget.unwrap_or(report.allows.len());
    let baseline = Baseline::from_report(&report, budget);
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("ig-lint: creating {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&opts.out, baseline.render()) {
        eprintln!("ig-lint: writing {}: {e}", opts.out.display());
        return ExitCode::from(2);
    }
    println!(
        "ig-lint: baseline written to {} (budget {budget}, {} allows on record)",
        opts.out.display(),
        baseline.recorded_allows
    );
    ExitCode::SUCCESS
}

fn parse_callgraph_opts(args: &[String]) -> Result<CallgraphOpts, String> {
    let mut opts = CallgraphOpts {
        root: PathBuf::from("."),
        out: PathBuf::from("results/callgraph.json"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                opts.root = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root requires a directory")?;
            }
            "--out" => {
                opts.out = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--out requires a path")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_rules_opts(args: &[String]) -> Result<RulesOpts, String> {
    let mut opts = RulesOpts {
        markdown: false,
        check: false,
        readme: PathBuf::from("README.md"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--markdown" => opts.markdown = true,
            "--check" => opts.check = true,
            "--readme" => {
                opts.readme = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--readme requires a path")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn parse_threads_opts(args: &[String]) -> Result<ThreadsOpts, String> {
    let mut opts = ThreadsOpts {
        root: PathBuf::from("."),
        out: PathBuf::from("results/threads.json"),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                opts.root = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root requires a directory")?;
            }
            "--out" => {
                opts.out = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--out requires a path")?;
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(opts)
}

fn run_threads(opts: &ThreadsOpts) -> ExitCode {
    let json = match ig_lint::threads_json(&opts.root) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("ig-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("ig-lint: creating {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("ig-lint: writing {}: {e}", opts.out.display());
        return ExitCode::from(2);
    }
    println!("ig-lint: thread topology written to {}", opts.out.display());
    ExitCode::SUCCESS
}

fn run_callgraph(opts: &CallgraphOpts) -> ExitCode {
    let json = match ig_lint::callgraph_json(&opts.root) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("ig-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };
    if let Some(dir) = opts.out.parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("ig-lint: creating {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }
    if let Err(e) = std::fs::write(&opts.out, &json) {
        eprintln!("ig-lint: writing {}: {e}", opts.out.display());
        return ExitCode::from(2);
    }
    println!("ig-lint: call graph written to {}", opts.out.display());
    ExitCode::SUCCESS
}

/// The README's generated rule table, marker lines included.
fn rules_markdown() -> String {
    let mut s = String::from(RULES_BEGIN);
    s.push('\n');
    s.push_str("| ID | Name | Family | Scope | Invariant |\n");
    s.push_str("|----|------|--------|-------|-----------|\n");
    for r in rule_catalog() {
        s.push_str(&format!(
            "| {} | `{}` | {} | {} | {} |\n",
            r.id,
            r.name,
            r.family,
            r.scope,
            r.description
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        ));
    }
    s.push_str(RULES_END);
    s.push('\n');
    s
}

const RULES_BEGIN: &str = "<!-- ig-lint-rules:begin (generated: `ig-lint rules --markdown`) -->";
const RULES_END: &str = "<!-- ig-lint-rules:end -->";

fn run_rules(opts: &RulesOpts) -> ExitCode {
    if opts.check {
        let text = match std::fs::read_to_string(&opts.readme) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("ig-lint: reading {}: {e}", opts.readme.display());
                return ExitCode::from(2);
            }
        };
        let expected = rules_markdown();
        let begin = text.find(RULES_BEGIN);
        let end = text.find(RULES_END);
        let block = match (begin, end) {
            (Some(b), Some(e)) if e > b => text.get(b..e + RULES_END.len() + 1),
            _ => None,
        };
        return match block {
            Some(b) if b == expected => {
                println!(
                    "ig-lint: {} rule table matches the catalog",
                    opts.readme.display()
                );
                ExitCode::SUCCESS
            }
            Some(_) => {
                eprintln!(
                    "ig-lint: {} rule table has drifted from the catalog — replace the \
                     block between the ig-lint-rules markers with the output of \
                     `cargo run -p ig-lint -- rules --markdown`",
                    opts.readme.display()
                );
                ExitCode::FAILURE
            }
            None => {
                eprintln!(
                    "ig-lint: {} has no ig-lint-rules marker block to check",
                    opts.readme.display()
                );
                ExitCode::FAILURE
            }
        };
    }
    if opts.markdown {
        print!("{}", rules_markdown());
        return ExitCode::SUCCESS;
    }
    println!(
        "{:<4} {:<25} {:<15} {:<55} DESCRIPTION",
        "ID", "NAME", "FAMILY", "SCOPE"
    );
    for r in rule_catalog() {
        println!(
            "{:<4} {:<25} {:<15} {:<55} {}",
            r.id,
            r.name,
            r.family,
            r.scope,
            r.description
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
    ExitCode::SUCCESS
}

fn write_report(report: &Report, opts: &CheckOpts) -> std::io::Result<()> {
    if let Some(dir) = opts.report_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&opts.report_path, report.to_json())
}
