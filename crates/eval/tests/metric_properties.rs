//! Property tests for metric invariants.

use ig_eval::metrics::{binary_f1, macro_f1, ConfusionMatrix, PrfScores};
use ig_eval::split::stratified_split;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn f1_family_bounded(
        tp in 0usize..100,
        fp in 0usize..100,
        fn_ in 0usize..100,
    ) {
        let s = PrfScores::from_counts(tp, fp, fn_);
        prop_assert!((0.0..=1.0).contains(&s.precision));
        prop_assert!((0.0..=1.0).contains(&s.recall));
        prop_assert!((0.0..=1.0).contains(&s.f1));
        // F1 is at most min(P, R) * 2 / (1 + min/max) ≤ max(P, R) and at
        // least min(P, R) when both positive — use the loose envelope.
        prop_assert!(s.f1 <= s.precision.max(s.recall) + 1e-12);
        if s.precision > 0.0 && s.recall > 0.0 {
            prop_assert!(s.f1 >= s.precision.min(s.recall) - 1e-12);
        }
    }

    #[test]
    fn binary_f1_agrees_with_counts(
        pairs in proptest::collection::vec((any::<bool>(), any::<bool>()), 1..60),
    ) {
        let gold: Vec<bool> = pairs.iter().map(|p| p.0).collect();
        let pred: Vec<bool> = pairs.iter().map(|p| p.1).collect();
        let s = binary_f1(&gold, &pred);
        let tp = pairs.iter().filter(|(g, p)| *g && *p).count();
        let fp = pairs.iter().filter(|(g, p)| !*g && *p).count();
        let fn_ = pairs.iter().filter(|(g, p)| *g && !*p).count();
        let expected = PrfScores::from_counts(tp, fp, fn_);
        prop_assert!((s.f1 - expected.f1).abs() < 1e-12);
    }

    #[test]
    fn perfect_prediction_scores_one(
        labels in proptest::collection::vec(0usize..4, 1..50),
    ) {
        let classes = labels.iter().copied().max().unwrap_or(0) + 1;
        if classes >= 2 {
            // Macro-F1 of a perfect prediction is 1 only when every class
            // appears; restrict to that case.
            let mut present = vec![false; classes];
            for &l in &labels {
                present[l] = true;
            }
            prop_assume!(present.iter().all(|&p| p));
            prop_assert!((macro_f1(classes, &labels, &labels) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn confusion_matrix_total_and_accuracy_consistent(
        pairs in proptest::collection::vec((0usize..3, 0usize..3), 1..80),
    ) {
        let gold: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let pred: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let cm = ConfusionMatrix::from_pairs(3, &gold, &pred);
        prop_assert_eq!(cm.total(), pairs.len());
        let correct = pairs.iter().filter(|(g, p)| g == p).count();
        prop_assert!((cm.accuracy() - correct as f64 / pairs.len() as f64).abs() < 1e-12);
        prop_assert!((0.0..=1.0).contains(&cm.macro_f1()));
    }

    #[test]
    fn stratified_split_partitions(
        labels in proptest::collection::vec(0usize..3, 2..60),
        frac in 0.05f64..0.6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let split = stratified_split(&labels, frac, &mut rng);
        prop_assert_eq!(split.train.len() + split.test.len(), labels.len());
        let mut all: Vec<usize> = split.train.iter().chain(&split.test).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), labels.len());
    }
}
