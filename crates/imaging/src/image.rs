//! Dense `f32` grayscale images and basic raster operations.
//!
//! Pixel values are nominally in `[0, 1]` but nothing enforces it; the
//! augmentation policies (brightness, contrast) intentionally push values
//! outside that range before [`GrayImage::clamp`] brings them back.

use crate::geometry::BBox;
use crate::{ImagingError, Result};

/// A dense grayscale image with `f32` pixels in row-major order.
#[derive(Debug, Clone, PartialEq)]
pub struct GrayImage {
    width: usize,
    height: usize,
    data: Vec<f32>,
}

impl GrayImage {
    /// Creates a `width` x `height` image filled with zeros.
    pub fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            data: vec![0.0; width * height],
        }
    }

    /// Creates an image filled with a constant value.
    pub fn filled(width: usize, height: usize, value: f32) -> Self {
        Self {
            width,
            height,
            data: vec![value; width * height],
        }
    }

    /// Creates an image from a closure evaluated at every `(x, y)`.
    pub fn from_fn(width: usize, height: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                data.push(f(x, y));
            }
        }
        Self {
            width,
            height,
            data,
        }
    }

    /// Wraps an existing row-major buffer. Fails if the length does not
    /// match `width * height`.
    pub fn from_vec(width: usize, height: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != width * height {
            return Err(ImagingError::InvalidDimension(format!(
                "buffer length {} != {}x{}",
                data.len(),
                width,
                height
            )));
        }
        Ok(Self {
            width,
            height,
            data,
        })
    }

    /// Image width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Image height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// `(width, height)` pair.
    #[inline]
    pub fn dims(&self) -> (usize, usize) {
        (self.width, self.height)
    }

    /// Number of pixels.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the image has no pixels.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Approximate heap footprint of the pixel buffer, in bytes. Used by
    /// the out-of-core shard budgeter; an estimate, not an accounting.
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        self.data.len() * core::mem::size_of::<f32>()
    }

    /// Borrow the raw row-major pixel buffer.
    #[inline]
    pub fn pixels(&self) -> &[f32] {
        &self.data
    }

    /// Mutably borrow the raw row-major pixel buffer.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the image, returning its pixel buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Pixel at `(x, y)`. Panics when out of bounds (debug-friendly; hot
    /// paths use [`GrayImage::row`] slices instead).
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> f32 {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x]
    }

    /// Pixel at `(x, y)` clamped to the image border (replicate padding).
    #[inline]
    pub fn get_clamped(&self, x: isize, y: isize) -> f32 {
        let cx = x.clamp(0, self.width as isize - 1) as usize;
        let cy = y.clamp(0, self.height as isize - 1) as usize;
        self.data[cy * self.width + cx]
    }

    /// Set pixel at `(x, y)`.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, value: f32) {
        debug_assert!(x < self.width && y < self.height);
        self.data[y * self.width + x] = value;
    }

    /// Borrow row `y` as a slice.
    #[inline]
    pub fn row(&self, y: usize) -> &[f32] {
        &self.data[y * self.width..(y + 1) * self.width]
    }

    /// Mutably borrow row `y` as a slice.
    #[inline]
    pub fn row_mut(&mut self, y: usize) -> &mut [f32] {
        &mut self.data[y * self.width..(y + 1) * self.width]
    }

    /// Bilinearly sample at a continuous coordinate, replicate padding.
    pub fn sample_bilinear(&self, x: f32, y: f32) -> f32 {
        let tx = x - x.floor();
        let ty = y - y.floor();
        let x0 = x.floor() as isize;
        let y0 = y.floor() as isize;
        let p00 = self.get_clamped(x0, y0);
        let p10 = self.get_clamped(x0 + 1, y0);
        let p01 = self.get_clamped(x0, y0 + 1);
        let p11 = self.get_clamped(x0 + 1, y0 + 1);
        let top = p00 + (p10 - p00) * tx;
        let bot = p01 + (p11 - p01) * tx;
        top + (bot - top) * ty
    }

    /// Apply `f` to every pixel in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for p in &mut self.data {
            *p = f(*p);
        }
    }

    /// Return a new image with `f` applied to every pixel.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        let mut out = self.clone();
        out.map_in_place(f);
        out
    }

    /// Clamp every pixel into `[lo, hi]`.
    pub fn clamp(&mut self, lo: f32, hi: f32) {
        self.map_in_place(|p| p.clamp(lo, hi));
    }

    /// Crop the rectangle `(x, y, w, h)` out of the image.
    pub fn crop(&self, x: usize, y: usize, w: usize, h: usize) -> Result<GrayImage> {
        if w == 0 || h == 0 {
            return Err(ImagingError::InvalidDimension(
                "crop with zero dimension".into(),
            ));
        }
        if x + w > self.width || y + h > self.height {
            return Err(ImagingError::OutOfBounds {
                rect: (x, y, w, h),
                image: (self.width, self.height),
            });
        }
        let mut out = GrayImage::new(w, h);
        for dy in 0..h {
            let src = &self.row(y + dy)[x..x + w];
            out.row_mut(dy).copy_from_slice(src);
        }
        Ok(out)
    }

    /// Crop the pixels covered by `bbox` (clipped to the image bounds).
    /// Returns `None` if the clipped box is empty.
    pub fn crop_bbox(&self, bbox: &BBox) -> Option<GrayImage> {
        let clipped = bbox.clip(self.width, self.height)?;
        // `clip` already snapped the box to integral pixel edges.
        self.crop(
            clipped.x.floor() as usize,
            clipped.y.floor() as usize,
            clipped.w.floor() as usize,
            clipped.h.floor() as usize,
        )
        .ok()
    }

    /// Paste `src` with its top-left corner at `(x, y)`, overwriting pixels.
    pub fn paste(&mut self, src: &GrayImage, x: usize, y: usize) -> Result<()> {
        if x + src.width > self.width || y + src.height > self.height {
            return Err(ImagingError::OutOfBounds {
                rect: (x, y, src.width, src.height),
                image: (self.width, self.height),
            });
        }
        for dy in 0..src.height {
            let dst =
                &mut self.data[(y + dy) * self.width + x..(y + dy) * self.width + x + src.width];
            dst.copy_from_slice(src.row(dy));
        }
        Ok(())
    }

    /// Blend `src` onto the image at `(x, y)` with `src` treated as an
    /// additive perturbation weighted by `alpha`, clipping at the borders.
    pub fn blend_add(&mut self, src: &GrayImage, x: isize, y: isize, alpha: f32) {
        for dy in 0..src.height as isize {
            let ty = y + dy;
            if ty < 0 || ty >= self.height as isize {
                continue;
            }
            for dx in 0..src.width as isize {
                let tx = x + dx;
                if tx < 0 || tx >= self.width as isize {
                    continue;
                }
                let idx = ty as usize * self.width + tx as usize;
                self.data[idx] += alpha * src.get(dx as usize, dy as usize);
            }
        }
    }

    /// Draw a filled axis-aligned rectangle.
    pub fn fill_rect(&mut self, x: usize, y: usize, w: usize, h: usize, value: f32) {
        let x1 = (x + w).min(self.width);
        let y1 = (y + h).min(self.height);
        for yy in y.min(self.height)..y1 {
            for p in &mut self.row_mut(yy)[x.min(x1)..x1] {
                *p = value;
            }
        }
    }

    /// Draw a filled disk centred at `(cx, cy)`.
    pub fn fill_disk(&mut self, cx: f32, cy: f32, radius: f32, value: f32) {
        let r2 = radius * radius;
        let x0 = (cx - radius).max(0.0).floor() as usize;
        let y0 = (cy - radius).max(0.0).floor() as usize;
        let x1 = ((cx + radius).ceil() as usize + 1).min(self.width);
        let y1 = ((cy + radius).ceil() as usize + 1).min(self.height);
        for y in y0..y1 {
            for x in x0..x1 {
                let dx = x as f32 - cx;
                let dy = y as f32 - cy;
                if dx * dx + dy * dy <= r2 {
                    self.set(x, y, value);
                }
            }
        }
    }

    /// Draw an anti-aliasing-free thick line segment from `(x0, y0)` to
    /// `(x1, y1)` by stamping disks along the segment.
    pub fn draw_line(&mut self, x0: f32, y0: f32, x1: f32, y1: f32, thickness: f32, value: f32) {
        let dx = x1 - x0;
        let dy = y1 - y0;
        let len = (dx * dx + dy * dy).sqrt().max(1e-6);
        let steps = (len * 2.0).ceil() as usize + 1;
        let radius = (thickness * 0.5).max(0.5);
        for i in 0..steps {
            let t = i as f32 / (steps - 1).max(1) as f32;
            self.fill_disk(x0 + t * dx, y0 + t * dy, radius, value);
        }
    }

    /// Horizontally mirror the image.
    pub fn flip_horizontal(&self) -> GrayImage {
        GrayImage::from_fn(self.width, self.height, |x, y| {
            self.get(self.width - 1 - x, y)
        })
    }

    /// Vertically mirror the image.
    pub fn flip_vertical(&self) -> GrayImage {
        GrayImage::from_fn(self.width, self.height, |x, y| {
            self.get(x, self.height - 1 - y)
        })
    }

    /// Transpose rows and columns.
    pub fn transpose(&self) -> GrayImage {
        GrayImage::from_fn(self.height, self.width, |x, y| self.get(y, x))
    }

    /// Splits the image vertically in half and stacks the two halves,
    /// producing a more square aspect ratio. This mirrors the paper's
    /// preprocessing for the long, thin Product images before feeding CNNs
    /// (Section 6.1). Odd widths drop the middle column.
    pub fn split_and_stack(&self) -> GrayImage {
        let half = self.width / 2;
        if half == 0 {
            return self.clone();
        }
        let mut out = GrayImage::new(half, self.height * 2);
        for y in 0..self.height {
            out.row_mut(y).copy_from_slice(&self.row(y)[..half]);
            out.row_mut(self.height + y)
                .copy_from_slice(&self.row(y)[self.width - half..]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_zeroed() {
        let img = GrayImage::new(4, 3);
        assert_eq!(img.dims(), (4, 3));
        assert!(img.pixels().iter().all(|&p| p == 0.0));
    }

    #[test]
    fn from_fn_row_major_layout() {
        let img = GrayImage::from_fn(3, 2, |x, y| (y * 10 + x) as f32);
        assert_eq!(img.pixels(), &[0.0, 1.0, 2.0, 10.0, 11.0, 12.0]);
        assert_eq!(img.get(2, 1), 12.0);
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(GrayImage::from_vec(2, 2, vec![0.0; 3]).is_err());
        assert!(GrayImage::from_vec(2, 2, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn get_clamped_replicates_border() {
        let img = GrayImage::from_fn(2, 2, |x, y| (y * 2 + x) as f32);
        assert_eq!(img.get_clamped(-5, -5), 0.0);
        assert_eq!(img.get_clamped(10, 10), 3.0);
        assert_eq!(img.get_clamped(-1, 1), 2.0);
    }

    #[test]
    fn bilinear_sample_interpolates() {
        let img = GrayImage::from_vec(2, 1, vec![0.0, 1.0]).unwrap();
        assert!((img.sample_bilinear(0.5, 0.0) - 0.5).abs() < 1e-6);
        assert!((img.sample_bilinear(0.25, 0.0) - 0.25).abs() < 1e-6);
    }

    #[test]
    fn bilinear_sample_at_integer_is_exact() {
        let img = GrayImage::from_fn(4, 4, |x, y| (x * y) as f32);
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(img.sample_bilinear(x as f32, y as f32), img.get(x, y));
            }
        }
    }

    #[test]
    fn crop_extracts_subimage() {
        let img = GrayImage::from_fn(5, 5, |x, y| (y * 5 + x) as f32);
        let c = img.crop(1, 2, 3, 2).unwrap();
        assert_eq!(c.dims(), (3, 2));
        assert_eq!(c.get(0, 0), 11.0);
        assert_eq!(c.get(2, 1), 18.0);
    }

    #[test]
    fn crop_out_of_bounds_errors() {
        let img = GrayImage::new(4, 4);
        assert!(matches!(
            img.crop(2, 2, 3, 1),
            Err(ImagingError::OutOfBounds { .. })
        ));
        assert!(img.crop(0, 0, 0, 1).is_err());
    }

    #[test]
    fn paste_roundtrips_with_crop() {
        let mut img = GrayImage::new(6, 6);
        let patch = GrayImage::filled(2, 3, 7.0);
        img.paste(&patch, 3, 1).unwrap();
        assert_eq!(img.crop(3, 1, 2, 3).unwrap(), patch);
        assert_eq!(img.get(2, 1), 0.0);
        assert_eq!(img.get(5, 1), 0.0);
    }

    #[test]
    fn paste_out_of_bounds_errors() {
        let mut img = GrayImage::new(4, 4);
        let patch = GrayImage::new(3, 3);
        assert!(img.paste(&patch, 2, 2).is_err());
    }

    #[test]
    fn blend_add_clips_at_border() {
        let mut img = GrayImage::new(3, 3);
        let patch = GrayImage::filled(2, 2, 1.0);
        img.blend_add(&patch, -1, -1, 0.5);
        assert_eq!(img.get(0, 0), 0.5);
        assert_eq!(img.get(1, 1), 0.0);
    }

    #[test]
    fn fill_rect_clips() {
        let mut img = GrayImage::new(4, 4);
        img.fill_rect(2, 2, 10, 10, 1.0);
        assert_eq!(img.get(3, 3), 1.0);
        assert_eq!(img.get(1, 1), 0.0);
    }

    #[test]
    fn fill_disk_covers_center() {
        let mut img = GrayImage::new(9, 9);
        img.fill_disk(4.0, 4.0, 2.0, 1.0);
        assert_eq!(img.get(4, 4), 1.0);
        assert_eq!(img.get(4, 6), 1.0);
        assert_eq!(img.get(0, 0), 0.0);
    }

    #[test]
    fn draw_line_marks_endpoints() {
        let mut img = GrayImage::new(10, 10);
        img.draw_line(1.0, 1.0, 8.0, 8.0, 1.0, 1.0);
        assert_eq!(img.get(1, 1), 1.0);
        assert_eq!(img.get(8, 8), 1.0);
        assert_eq!(img.get(4, 4), 1.0);
        assert_eq!(img.get(9, 0), 0.0);
    }

    #[test]
    fn flips_are_involutions() {
        let img = GrayImage::from_fn(4, 3, |x, y| (y * 4 + x) as f32);
        assert_eq!(img.flip_horizontal().flip_horizontal(), img);
        assert_eq!(img.flip_vertical().flip_vertical(), img);
        assert_eq!(img.transpose().transpose(), img);
    }

    #[test]
    fn split_and_stack_halves_width_doubles_height() {
        let img = GrayImage::from_fn(6, 2, |x, y| (y * 6 + x) as f32);
        let s = img.split_and_stack();
        assert_eq!(s.dims(), (3, 4));
        // Top half is the left half of the original.
        assert_eq!(s.get(0, 0), 0.0);
        assert_eq!(s.get(2, 1), 8.0);
        // Bottom half is the right half.
        assert_eq!(s.get(0, 2), 3.0);
        assert_eq!(s.get(2, 3), 11.0);
    }

    #[test]
    fn split_and_stack_on_width_one_is_identity() {
        let img = GrayImage::filled(1, 5, 0.3);
        assert_eq!(img.split_and_stack(), img);
    }

    #[test]
    fn map_and_clamp() {
        let mut img = GrayImage::from_vec(2, 1, vec![-0.5, 1.5]).unwrap();
        img.clamp(0.0, 1.0);
        assert_eq!(img.pixels(), &[0.0, 1.0]);
        let doubled = img.map(|p| p * 2.0);
        assert_eq!(doubled.pixels(), &[0.0, 2.0]);
    }
}
