//! CLI for the workspace analyzer.
//!
//! ```text
//! cargo run -p ig-lint -- check [--root DIR] [--report PATH] [--quiet]
//! cargo run -p ig-lint -- rules
//! ```
//!
//! `check` exits 0 when the workspace upholds every invariant, 1 when any
//! violation (including a malformed allow annotation) survives, and 2 on
//! usage or I/O errors. A machine-readable report is written to
//! `results/lint_report.json` unless `--report` overrides the path.

use std::path::PathBuf;
use std::process::ExitCode;

use ig_lint::report::Report;
use ig_lint::rules::rule_descriptions;

struct CheckOpts {
    root: PathBuf,
    report_path: PathBuf,
    quiet: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => match parse_check_opts(&args[1..]) {
            Ok(opts) => run_check(&opts),
            Err(e) => {
                eprintln!("ig-lint: {e}");
                ExitCode::from(2)
            }
        },
        Some("rules") => {
            for (name, desc) in rule_descriptions() {
                println!("{name:16} {desc}");
            }
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("ig-lint: unknown command `{other}`\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str =
    "usage: ig-lint check [--root DIR] [--report PATH] [--quiet]\n       ig-lint rules";

fn parse_check_opts(args: &[String]) -> Result<CheckOpts, String> {
    let mut opts = CheckOpts {
        root: PathBuf::from("."),
        report_path: PathBuf::from("results/lint_report.json"),
        quiet: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                opts.root = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--root requires a directory")?;
            }
            "--report" => {
                opts.report_path = it
                    .next()
                    .map(PathBuf::from)
                    .ok_or("--report requires a path")?;
            }
            "--quiet" => opts.quiet = true,
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    Ok(opts)
}

fn run_check(opts: &CheckOpts) -> ExitCode {
    let report = match ig_lint::check_workspace(&opts.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ig-lint: scanning {}: {e}", opts.root.display());
            return ExitCode::from(2);
        }
    };

    if !opts.quiet {
        for d in &report.violations {
            eprintln!("{}\n", d.render());
        }
    }

    if let Err(e) = write_report(&report, opts) {
        eprintln!(
            "ig-lint: writing report {}: {e}",
            opts.report_path.display()
        );
        return ExitCode::from(2);
    }

    let counts = report.counts();
    let summary: Vec<String> = counts.iter().map(|(r, n)| format!("{r}: {n}")).collect();
    if report.violations.is_empty() {
        if !opts.quiet {
            println!(
                "ig-lint: {} files clean, {} allow annotation(s) on record",
                report.files_scanned,
                report.allows.len()
            );
        }
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "ig-lint: {} violation(s) in {} files scanned ({})",
            report.violations.len(),
            report.files_scanned,
            summary.join(", ")
        );
        ExitCode::FAILURE
    }
}

fn write_report(report: &Report, opts: &CheckOpts) -> std::io::Result<()> {
    if let Some(dir) = opts.report_path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    std::fs::write(&opts.report_path, report.to_json())
}
