//! Training utilities: k-fold cross-validation splits and early stopping.
//!
//! The paper tunes the labeler with "k-fold cross validation where each
//! fold has at least 20 examples per class and early stopping in order to
//! compare the accuracies of candidate models before they overfit"
//! (Section 6.1). These helpers implement both mechanics; the tuning
//! policy itself lives in `ig-core`.

use rand::seq::SliceRandom;
use rand::Rng;

/// One cross-validation fold as index sets into the caller's dataset.
#[derive(Debug, Clone)]
pub struct Fold {
    /// Training indices.
    pub train: Vec<usize>,
    /// Held-out validation indices.
    pub val: Vec<usize>,
}

/// Shuffle `n` indices and slice them into `k` contiguous folds. `k` is
/// clamped to `[2, n]`; callers with fewer than 2 samples get a single
/// degenerate fold training and validating on everything.
pub fn kfold(n: usize, k: usize, rng: &mut impl Rng) -> Vec<Fold> {
    if n < 2 {
        let all: Vec<usize> = (0..n).collect();
        return vec![Fold {
            train: all.clone(),
            val: all,
        }];
    }
    let k = k.clamp(2, n);
    let mut indices: Vec<usize> = (0..n).collect();
    indices.shuffle(rng);
    let mut folds = Vec::with_capacity(k);
    let base = n / k;
    let extra = n % k;
    let mut start = 0;
    for i in 0..k {
        let size = base + usize::from(i < extra);
        let val: Vec<usize> = indices[start..start + size].to_vec();
        let train: Vec<usize> = indices[..start]
            .iter()
            .chain(&indices[start + size..])
            .copied()
            .collect();
        folds.push(Fold { train, val });
        start += size;
    }
    folds
}

/// Stratified k-fold: class proportions are preserved in every fold.
/// `labels[i]` is the class of sample `i`.
pub fn stratified_kfold(labels: &[usize], k: usize, rng: &mut impl Rng) -> Vec<Fold> {
    let n = labels.len();
    if n < 2 {
        let all: Vec<usize> = (0..n).collect();
        return vec![Fold {
            train: all.clone(),
            val: all,
        }];
    }
    let k = k.clamp(2, n);
    // Bucket indices per class, shuffle each bucket, deal them round-robin.
    let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_classes];
    for (i, &c) in labels.iter().enumerate() {
        buckets[c].push(i);
    }
    let mut val_sets: Vec<Vec<usize>> = vec![Vec::new(); k];
    for bucket in &mut buckets {
        bucket.shuffle(rng);
        for (j, &idx) in bucket.iter().enumerate() {
            val_sets[j % k].push(idx);
        }
    }
    val_sets
        .into_iter()
        .map(|val| {
            let in_val: std::collections::HashSet<usize> = val.iter().copied().collect();
            let train = (0..n).filter(|i| !in_val.contains(i)).collect();
            Fold { train, val }
        })
        .collect()
}

/// The paper's fold-count rule: the largest `k ≥ 2` such that each fold
/// keeps at least `min_per_class` validation examples of the rarest class.
pub fn paper_fold_count(labels: &[usize], min_per_class: usize) -> usize {
    let num_classes = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut counts = vec![0usize; num_classes];
    for &c in labels {
        counts[c] += 1;
    }
    let rarest = counts.iter().copied().filter(|&c| c > 0).min().unwrap_or(0);
    (rarest / min_per_class.max(1)).clamp(2, 10)
}

/// Early stopping on a validation metric that should *decrease* (a loss).
/// Tracks the best value seen and trips after `patience` non-improving
/// checks.
#[derive(Debug, Clone)]
pub struct EarlyStopping {
    best: f32,
    patience: usize,
    stale: usize,
    min_delta: f32,
}

impl EarlyStopping {
    /// `patience` = number of consecutive non-improving observations
    /// tolerated; `min_delta` = required improvement to reset the counter.
    pub fn new(patience: usize, min_delta: f32) -> Self {
        Self {
            best: f32::INFINITY,
            patience,
            stale: 0,
            min_delta,
        }
    }

    /// Record a validation loss; returns `true` when training should stop.
    pub fn observe(&mut self, val_loss: f32) -> bool {
        if val_loss < self.best - self.min_delta {
            self.best = val_loss;
            self.stale = 0;
        } else {
            self.stale += 1;
        }
        self.stale > self.patience
    }

    /// Best loss observed so far.
    pub fn best(&self) -> f32 {
        self.best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kfold_partitions_all_indices() {
        let mut rng = StdRng::seed_from_u64(0);
        let folds = kfold(17, 5, &mut rng);
        assert_eq!(folds.len(), 5);
        let mut seen = [false; 17];
        for fold in &folds {
            for &i in &fold.val {
                assert!(!seen[i], "index {i} in two validation folds");
                seen[i] = true;
            }
            assert_eq!(fold.train.len() + fold.val.len(), 17);
            // Train and val are disjoint.
            for &i in &fold.val {
                assert!(!fold.train.contains(&i));
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn kfold_handles_tiny_n() {
        let mut rng = StdRng::seed_from_u64(1);
        let folds = kfold(1, 5, &mut rng);
        assert_eq!(folds.len(), 1);
        assert_eq!(folds[0].val, vec![0]);
        let folds = kfold(0, 3, &mut rng);
        assert_eq!(folds.len(), 1);
        assert!(folds[0].val.is_empty());
    }

    #[test]
    fn kfold_clamps_k_to_n() {
        let mut rng = StdRng::seed_from_u64(2);
        let folds = kfold(3, 10, &mut rng);
        assert_eq!(folds.len(), 3);
        assert!(folds.iter().all(|f| f.val.len() == 1));
    }

    #[test]
    fn stratified_kfold_preserves_class_balance() {
        let mut rng = StdRng::seed_from_u64(3);
        // 40 of class 0, 10 of class 1.
        let labels: Vec<usize> = (0..50).map(|i| usize::from(i >= 40)).collect();
        let folds = stratified_kfold(&labels, 5, &mut rng);
        for fold in &folds {
            let pos = fold.val.iter().filter(|&&i| labels[i] == 1).count();
            assert_eq!(pos, 2, "each fold should hold 2 of the 10 positives");
            assert_eq!(fold.val.len(), 10);
        }
    }

    #[test]
    fn stratified_kfold_is_a_partition() {
        let mut rng = StdRng::seed_from_u64(4);
        let labels: Vec<usize> = (0..23).map(|i| i % 3).collect();
        let folds = stratified_kfold(&labels, 4, &mut rng);
        let mut seen = vec![false; labels.len()];
        for fold in &folds {
            for &i in &fold.val {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn paper_fold_count_respects_min_per_class() {
        // 100 positives, 400 negatives, 20 per class → k = 5.
        let labels: Vec<usize> = (0..500).map(|i| usize::from(i < 100)).collect();
        assert_eq!(paper_fold_count(&labels, 20), 5);
        // Very rare class forces the minimum of 2 folds.
        let labels: Vec<usize> = (0..100).map(|i| usize::from(i < 5)).collect();
        assert_eq!(paper_fold_count(&labels, 20), 2);
    }

    #[test]
    fn early_stopping_trips_after_patience() {
        let mut es = EarlyStopping::new(2, 0.0);
        assert!(!es.observe(1.0));
        assert!(!es.observe(0.9)); // improvement
        assert!(!es.observe(0.95)); // stale 1
        assert!(!es.observe(0.95)); // stale 2
        assert!(es.observe(0.95)); // stale 3 > patience
        assert_eq!(es.best(), 0.9);
    }

    #[test]
    fn early_stopping_resets_on_improvement() {
        let mut es = EarlyStopping::new(1, 0.0);
        assert!(!es.observe(1.0));
        assert!(!es.observe(1.1)); // stale 1
        assert!(!es.observe(0.5)); // improvement resets
        assert!(!es.observe(0.6)); // stale 1
        assert!(es.observe(0.6)); // stale 2 > patience
    }

    #[test]
    fn early_stopping_min_delta() {
        let mut es = EarlyStopping::new(0, 0.1);
        assert!(!es.observe(1.0));
        // 0.95 improves by < min_delta → counts as stale and trips
        // immediately with patience 0.
        assert!(es.observe(0.95));
    }
}
