//! Workspace-level analysis properties: the call graph and the thread
//! topology are deterministic (byte-identical dumps) and total (malformed
//! input degrades to `unknown` nodes or absent sites, never a panic),
//! cross-crate resolution stitches `use`-imported calls, and the
//! mechanical fixer is idempotent.

use ig_lint::{callgraph_json_for_units, threads_json_for_units, SourceUnit};

fn unit(rel: &str, src: &str) -> SourceUnit {
    SourceUnit::classified(rel, src.to_string())
}

#[test]
fn callgraph_dump_is_deterministic() {
    let units = vec![
        unit(
            "crates/core/src/lib.rs",
            "pub mod features;\npub fn entry() { features::compute(); }\n",
        ),
        unit(
            "crates/core/src/features.rs",
            "pub fn compute() { helper(); helper(); }\nfn helper() {}\n",
        ),
        unit(
            "crates/runtime/src/lib.rs",
            "use ig_core::entry;\npub fn drive() { entry(); std::fs::write(\"x\", \"y\").ok(); }\n",
        ),
    ];
    let a = callgraph_json_for_units(&units);
    let b = callgraph_json_for_units(&units);
    assert_eq!(a, b, "same units must produce byte-identical dumps");
    assert!(a.contains("\"nodes\""));
    assert!(a.contains("\"edges\""));
}

#[test]
fn callgraph_resolves_cross_crate_use_imports() {
    let units = vec![
        unit(
            "crates/core/src/lib.rs",
            "pub fn shared_entry() { internal(); }\nfn internal() {}\n",
        ),
        unit(
            "crates/runtime/src/lib.rs",
            "use ig_core::shared_entry;\npub fn drive() { shared_entry(); }\n",
        ),
    ];
    let json = callgraph_json_for_units(&units);
    // `drive` must link to the *fn node* for ig_core::shared_entry, not an
    // unknown: the label appears exactly once (one node, kind fn).
    let label = "\"label\": \"ig_core::shared_entry\"";
    assert_eq!(json.matches(label).count(), 1, "dump:\n{json}");
    let line = json
        .lines()
        .find(|l| l.contains(label))
        .expect("node present");
    assert!(line.contains("\"kind\": \"fn\""), "line: {line}");
}

#[test]
fn callgraph_is_total_on_malformed_and_unresolvable_input() {
    let units = vec![
        unit("crates/core/src/broken.rs", "fn broken(((( {\n"),
        unit(
            "crates/core/src/partial.rs",
            "fn ok() { std::mem::transmute_garbage::<<>(); some_external_fn(); }\nfn also_ok() { ok(); }\n",
        ),
        unit("crates/core/src/empty.rs", ""),
        unit(
            "crates/core/src/weird.rs",
            "fn w() { (1 + 2).undefined_method(); crate::no::such::path(); }\n",
        ),
    ];
    // Must not panic, and whatever could not resolve shows up as
    // `unknown` nodes instead of being dropped.
    let json = callgraph_json_for_units(&units);
    assert!(json.contains("\"kind\": \"unknown\""), "dump:\n{json}");
    assert!(json.contains(".undefined_method"), "dump:\n{json}");
}

#[test]
fn callgraph_interns_unknowns_by_label() {
    let units = vec![unit(
        "crates/core/src/lib.rs",
        "pub fn a() { std::fs::write(\"x\", \"1\").ok(); }\npub fn b() { std::fs::write(\"y\", \"2\").ok(); }\n",
    )];
    let json = callgraph_json_for_units(&units);
    assert_eq!(
        json.matches("\"label\": \"std::fs::write\"").count(),
        1,
        "two call sites, one interned unknown node; dump:\n{json}"
    );
}

#[test]
fn threads_dump_is_deterministic_and_ordered() {
    let units = vec![
        unit(
            "crates/runtime/src/pool.rs",
            "pub fn fan_out(n: usize) {\n    std::thread::scope(|scope| {\n        for shard in 0..n {\n            scope.spawn(move || shard + 1);\n        }\n    });\n}\n",
        ),
        unit(
            "crates/core/src/driver.rs",
            "pub fn background(tx: Sender<u32>) {\n    let h = std::thread::spawn(move || tx.send(1));\n    h.join().unwrap();\n}\n",
        ),
    ];
    let a = threads_json_for_units(&units);
    let b = threads_json_for_units(&units);
    assert_eq!(a, b, "same units must produce byte-identical dumps");
    // Sites come out in (file, line) order: core/driver.rs before
    // runtime/pool.rs, and all three spawn kinds are classified.
    let core_at = a.find("driver.rs").expect("driver site");
    let pool_at = a.find("pool.rs").expect("pool site");
    assert!(core_at < pool_at, "dump:\n{a}");
    for kind in ["\"thread-spawn\"", "\"scope\"", "\"scoped-spawn\""] {
        assert!(a.contains(kind), "missing {kind}; dump:\n{a}");
    }
    // The worker closure's escape set names the captured binding.
    assert!(a.contains("\"tx\""), "dump:\n{a}");
}

#[test]
fn threads_dump_is_total_on_malformed_input() {
    let units = vec![
        unit(
            "crates/core/src/broken.rs",
            "fn broken(((( {\n    std::thread::spawn(|| 1);\n",
        ),
        unit("crates/core/src/empty.rs", ""),
        unit(
            "crates/core/src/ok.rs",
            "pub fn go() {\n    let h = std::thread::spawn(|| 2);\n    h.join().unwrap();\n}\n",
        ),
    ];
    // Must not panic; whatever the recovered AST holds is classified and
    // the dump stays well-formed.
    let json = threads_json_for_units(&units);
    assert!(json.contains("\"version\": 1"), "dump:\n{json}");
    assert!(json.contains("ok.rs"), "dump:\n{json}");
}

#[test]
fn fix_then_lint_is_idempotent_over_fixtures() {
    // Applying the mechanical fixes once must reach a fixed point: a
    // second plan over the fixed source is empty, and re-applying changes
    // nothing. Run every fixture under the strict-errors scope so the
    // fixer sees the most rewrite opportunities it ever would.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures");
    let rel = "crates/faults/src/fixture.rs";
    let mut fixtures = 0;
    let mut planned = 0;
    for entry in std::fs::read_dir(&dir).expect("fixtures dir") {
        let path = entry.expect("entry").path();
        if path.extension().map_or(true, |e| e != "rs") {
            continue;
        }
        fixtures += 1;
        let src = std::fs::read_to_string(&path).expect("read fixture");
        let first = ig_lint::fix::plan_fixes(rel, &src, None);
        planned += first.len();
        let fixed = ig_lint::fix::apply_fixes(&src, &first);
        let second = ig_lint::fix::plan_fixes(rel, &fixed, None);
        assert!(
            second.is_empty(),
            "{}: second fix pass is not a no-op: {second:#?}",
            path.display()
        );
        assert_eq!(
            ig_lint::fix::apply_fixes(&fixed, &second),
            fixed,
            "{}: re-applying an empty plan must not edit",
            path.display()
        );
    }
    assert!(fixtures >= 10, "fixture sweep found only {fixtures} files");
    assert!(planned > 0, "expected at least one fixture to need fixes");
}
