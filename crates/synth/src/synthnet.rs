//! SynthNet: a generic procedural texture corpus standing in for ImageNet.
//!
//! The paper's transfer-learning baseline pre-trains VGG-19 on ImageNet
//! (Table 2 shows generic pre-training beats cross-defect-dataset
//! pre-training). ImageNet is unavailable here, so the TL baseline
//! pre-trains on this corpus instead: eight visually distinct texture
//! families whose classification forces a conv net to learn generic edge /
//! blob / frequency features.

use crate::{Dataset, LabeledImage, TaskType};
use ig_imaging::noise::{fbm_image, value_noise, white_noise_image};
use ig_imaging::GrayImage;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Number of SynthNet texture classes.
pub const SYNTHNET_CLASSES: usize = 8;

/// Generate `n` images of `side x side` pixels split over the 8 classes.
pub fn generate(n: usize, side: usize, seed: u64) -> Dataset {
    // ig-lint: allow(salt-determinism) -- generator entry point: `seed` is
    // the caller-chosen dataset seed (not the run seed); decorrelating
    // distinct datasets is the caller's contract, and experiments pass each
    // generator a distinct seed
    let mut rng = StdRng::seed_from_u64(seed);
    let per_class = (n / SYNTHNET_CLASSES).max(1);
    let mut images = Vec::with_capacity(per_class * SYNTHNET_CLASSES);
    for class in 0..SYNTHNET_CLASSES {
        for i in 0..per_class {
            let s = seed
                .wrapping_mul(53)
                .wrapping_add((class * per_class + i) as u64);
            let image = texture(class, side, s, &mut rng);
            images.push(LabeledImage {
                image,
                label: class,
                defect_boxes: Vec::new(),
                noisy: false,
                difficult: false,
            });
        }
    }
    images.shuffle(&mut rng);
    Dataset {
        name: "SynthNet".to_string(),
        task: TaskType::MultiClass(SYNTHNET_CLASSES),
        images,
    }
}

/// A random surface-like background (the common canvas of all classes,
/// like the shared natural-image statistics of ImageNet photos).
fn surface_canvas(seed: u64, side: usize, rng: &mut StdRng) -> GrayImage {
    let lo = rng.gen_range(0.25..0.55f32);
    let hi = lo + rng.gen_range(0.1..0.3f32);
    let freq = rng.gen_range(0.02..0.2f32);
    let mut img = fbm_image(seed, side, side, freq, 3, lo, hi);
    let grain = white_noise_image(seed.wrapping_add(1), side, side, -0.03, 0.03);
    for (o, g) in img.pixels_mut().iter_mut().zip(grain.pixels()) {
        *o += g;
    }
    img
}

fn texture(class: usize, side: usize, seed: u64, rng: &mut StdRng) -> GrayImage {
    // Every class sits on a surface-like canvas so a model pre-trained
    // here learns *generic surface + structure* features — the role
    // ImageNet's natural-image diversity plays for the paper's VGG-19.
    let mut img = surface_canvas(seed, side, rng);
    match class {
        // Plain surfaces, smooth vs rough (no overlay).
        0 => {}
        1 => {
            let extra = white_noise_image(seed.wrapping_add(2), side, side, -0.08, 0.08);
            for (o, g) in img.pixels_mut().iter_mut().zip(extra.pixels()) {
                *o += g;
            }
        }
        // Dark line structures (scratch/crack-like).
        2 => {
            for _ in 0..rng.gen_range(2..6) {
                img.draw_line(
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(1.0..2.0),
                    rng.gen_range(0.05..0.2),
                );
            }
        }
        // Bright line structures.
        3 => {
            for _ in 0..rng.gen_range(2..6) {
                img.draw_line(
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(1.0..2.0),
                    rng.gen_range(0.8..0.95),
                );
            }
        }
        // Small dark blobs (bubble/pit-like).
        4 => {
            for _ in 0..rng.gen_range(4..12) {
                img.fill_disk(
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(0.0..side as f32),
                    rng.gen_range(1.0..side as f32 * 0.08),
                    rng.gen_range(0.05..0.25),
                );
            }
        }
        // Large bright patches.
        5 => {
            for _ in 0..rng.gen_range(1..4) {
                let pw = rng.gen_range(side / 4..side / 2);
                let ph = rng.gen_range(side / 4..side / 2);
                let x0 = rng.gen_range(0..side - pw);
                let y0 = rng.gen_range(0..side - ph);
                img.fill_rect(x0, y0, pw, ph, rng.gen_range(0.75..0.95));
            }
        }
        // Periodic machining stripes.
        6 => {
            let angle = rng.gen_range(0.0..std::f32::consts::PI);
            let freq = rng.gen_range(0.3..0.9f32);
            let (s, c) = angle.sin_cos();
            let amp = rng.gen_range(0.1..0.25f32);
            let base = img.clone();
            img = GrayImage::from_fn(side, side, |x, y| {
                base.get(x, y) + amp * ((x as f32 * c + y as f32 * s) * freq).sin()
            });
        }
        // Cellular flake texture (scale-like).
        7 => {
            let base = img.clone();
            img = GrayImage::from_fn(side, side, |x, y| {
                let v = value_noise(seed.wrapping_add(3), x as f32, y as f32, 0.15);
                base.get(x, y) + if v > 0.55 { -0.2 } else { 0.0 }
            });
        }
        // Class indices are produced modulo SYNTHNET_CLASSES by the
        // generator loop — loud under debug_assertions, a flat texture in
        // release.
        _ => debug_assert!(false, "SynthNet has {SYNTHNET_CLASSES} classes"),
    }
    img.clamp(0.0, 1.0);
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_count() {
        let d = generate(64, 32, 1);
        assert_eq!(d.len(), 64);
        assert_eq!(d.task, TaskType::MultiClass(8));
    }

    #[test]
    fn all_classes_present_and_balanced() {
        let d = generate(80, 24, 2);
        let mut counts = [0usize; SYNTHNET_CLASSES];
        for img in &d.images {
            counts[img.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10));
    }

    #[test]
    fn pixels_in_unit_range() {
        let d = generate(16, 32, 3);
        for img in &d.images {
            for &p in img.image.pixels() {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn classes_differ_between_samples() {
        // Two images of the same class from different seeds differ.
        let d = generate(32, 24, 4);
        let same_class: Vec<&LabeledImage> = d.images.iter().filter(|i| i.label == 0).collect();
        assert!(same_class.len() >= 2);
        assert_ne!(same_class[0].image, same_class[1].image);
    }
}
