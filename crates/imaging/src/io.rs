//! Minimal PGM (portable graymap) I/O — enough to dump synthetic images
//! and patterns for human inspection without an image-crate dependency.

use crate::{GrayImage, ImagingError, Result};
use std::io::{Read, Write};
use std::path::Path;

/// Write the image as a binary (`P5`) PGM file; pixels are clamped to
/// `[0, 1]` and quantized to 8 bits.
pub fn write_pgm(img: &GrayImage, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    write!(f, "P5\n{} {}\n255\n", img.width(), img.height())?;
    let bytes: Vec<u8> = img
        .pixels()
        .iter()
        .map(|&p| (p.clamp(0.0, 1.0) * 255.0).round() as u8)
        .collect();
    f.write_all(&bytes)
}

/// Read a binary (`P5`) PGM file written by [`write_pgm`] (maxval 255).
pub fn read_pgm(path: impl AsRef<Path>) -> std::io::Result<GrayImage> {
    let mut data = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut data)?;
    parse_pgm(&data).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

fn parse_pgm(data: &[u8]) -> Result<GrayImage> {
    let mut pos = 0usize;
    let mut token = |data: &[u8]| -> Result<String> {
        while pos < data.len() && data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        // Comments.
        while pos < data.len() && data[pos] == b'#' {
            while pos < data.len() && data[pos] != b'\n' {
                pos += 1;
            }
            while pos < data.len() && data[pos].is_ascii_whitespace() {
                pos += 1;
            }
        }
        let start = pos;
        while pos < data.len() && !data[pos].is_ascii_whitespace() {
            pos += 1;
        }
        if start == pos {
            return Err(ImagingError::InvalidDimension(
                "truncated PGM header".into(),
            ));
        }
        Ok(String::from_utf8_lossy(&data[start..pos]).into_owned())
    };
    let magic = token(data)?;
    if magic != "P5" {
        return Err(ImagingError::InvalidDimension(format!(
            "unsupported PGM magic {magic}"
        )));
    }
    let parse_dim = |t: String| -> Result<usize> {
        t.parse()
            .map_err(|_| ImagingError::InvalidDimension(format!("bad PGM header field {t}")))
    };
    let w = parse_dim(token(data)?)?;
    let h = parse_dim(token(data)?)?;
    let maxval = parse_dim(token(data)?)?;
    if maxval == 0 || maxval > 255 {
        return Err(ImagingError::InvalidDimension(format!(
            "unsupported PGM maxval {maxval}"
        )));
    }
    pos += 1; // single whitespace after maxval
    let needed = w * h;
    if data.len() < pos + needed {
        return Err(ImagingError::InvalidDimension("truncated PGM body".into()));
    }
    let pixels: Vec<f32> = data[pos..pos + needed]
        .iter()
        .map(|&b| b as f32 / maxval as f32)
        .collect();
    GrayImage::from_vec(w, h, pixels)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_pixels_within_quantization() {
        let img = GrayImage::from_fn(17, 9, |x, y| ((x * 13 + y * 7) % 11) as f32 / 10.0);
        let dir = std::env::temp_dir().join("ig_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.dims(), img.dims());
        for (a, b) in img.pixels().iter().zip(back.pixels()) {
            assert!((a - b).abs() < 1.0 / 255.0 + 1e-6, "{a} vs {b}");
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn out_of_range_pixels_clamp() {
        let img = GrayImage::from_vec(2, 1, vec![-1.0, 2.0]).unwrap();
        let dir = std::env::temp_dir().join("ig_pgm_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("clamp.pgm");
        write_pgm(&img, &path).unwrap();
        let back = read_pgm(&path).unwrap();
        assert_eq!(back.pixels(), &[0.0, 1.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_non_p5() {
        assert!(parse_pgm(b"P2\n2 2\n255\n0 0 0 0").is_err());
        assert!(parse_pgm(b"P5\n2 2\n255\nab").is_err()); // truncated body
        assert!(parse_pgm(b"P5\n").is_err());
    }
}
