//! Property-based tests over the core data structures and invariants,
//! spanning crates through the public facade.

use inspector_gadget::imaging::filter::gaussian_blur;
use inspector_gadget::imaging::geometry::overlap_groups;
use inspector_gadget::imaging::integral::IntegralImage;
use inspector_gadget::imaging::ncc::{match_template, match_template_pyramid, PyramidMatchConfig};
use inspector_gadget::imaging::resize::{resize_bilinear, resize_nearest};
use inspector_gadget::imaging::stats::stats;
use inspector_gadget::nn::activation::softmax_rows;
use inspector_gadget::nn::train::{kfold, stratified_kfold};
use inspector_gadget::nn::Matrix;
use inspector_gadget::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_image(max_side: usize) -> impl Strategy<Value = GrayImage> {
    (1..=max_side, 1..=max_side, any::<u64>()).prop_map(|(w, h, seed)| {
        inspector_gadget::imaging::noise::white_noise_image(seed, w, h, 0.0, 1.0)
    })
}

fn arb_bbox() -> impl Strategy<Value = BBox> {
    (0.0f32..100.0, 0.0f32..100.0, 0.1f32..50.0, 0.1f32..50.0)
        .prop_map(|(x, y, w, h)| BBox::new(x, y, w, h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- geometry ----------------

    #[test]
    fn iou_is_symmetric_and_bounded(a in arb_bbox(), b in arb_bbox()) {
        let ab = a.iou(&b);
        let ba = b.iou(&a);
        prop_assert!((ab - ba).abs() < 1e-5);
        prop_assert!((0.0..=1.0 + 1e-5).contains(&ab));
    }

    #[test]
    fn self_iou_is_one(a in arb_bbox()) {
        prop_assert!((a.iou(&a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn union_contains_both(a in arb_bbox(), b in arb_bbox()) {
        let u = a.union(&b);
        prop_assert!(u.x <= a.x + 1e-4 && u.x <= b.x + 1e-4);
        prop_assert!(u.x1() >= a.x1() - 1e-3 && u.x1() >= b.x1() - 1e-3);
        prop_assert!(u.area() + 1e-3 >= a.area().max(b.area()));
    }

    #[test]
    fn intersection_is_smaller_than_either(a in arb_bbox(), b in arb_bbox()) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(i.area() <= a.area() + 1e-3);
            prop_assert!(i.area() <= b.area() + 1e-3);
        }
    }

    #[test]
    fn average_area_between_intersection_and_union(a in arb_bbox(), b in arb_bbox()) {
        let avg = BBox::average(&[a, b]).unwrap();
        let union = a.union(&b);
        prop_assert!(avg.area() <= union.area() + 1e-2);
    }

    #[test]
    fn overlap_groups_partition_all_indices(boxes in proptest::collection::vec(arb_bbox(), 0..12)) {
        let groups = overlap_groups(&boxes);
        let mut seen = vec![false; boxes.len()];
        for group in &groups {
            for &i in group {
                prop_assert!(!seen[i], "index {} appears twice", i);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    // ---------------- imaging ----------------

    #[test]
    fn resize_preserves_value_range(img in arb_image(24), w in 1usize..32, h in 1usize..32) {
        let bilinear = resize_bilinear(&img, w, h).unwrap();
        let s = stats(&bilinear);
        prop_assert!(s.min >= -1e-4 && s.max <= 1.0 + 1e-4);
        let nearest = resize_nearest(&img, w, h).unwrap();
        let s = stats(&nearest);
        prop_assert!(s.min >= 0.0 && s.max <= 1.0);
    }

    #[test]
    fn blur_preserves_range_and_reduces_variance(img in arb_image(24)) {
        let blurred = gaussian_blur(&img, 1.0);
        let before = stats(&img);
        let after = stats(&blurred);
        prop_assert!(after.min >= before.min - 1e-4);
        prop_assert!(after.max <= before.max + 1e-4);
        if img.len() > 16 {
            prop_assert!(after.variance <= before.variance + 1e-4);
        }
    }

    #[test]
    fn integral_window_sums_match_naive(img in arb_image(16)) {
        let integral = IntegralImage::of_values(&img);
        let (w, h) = img.dims();
        let mut naive = 0.0f64;
        for y in 0..h {
            for x in 0..w {
                naive += img.get(x, y) as f64;
            }
        }
        prop_assert!((integral.window_sum(0, 0, w, h) - naive).abs() < 1e-3);
    }

    #[test]
    fn ncc_score_bounded_on_nonnegative_images(
        img in arb_image(24),
        pw in 1usize..8,
        ph in 1usize..8,
    ) {
        prop_assume!(pw <= img.width() && ph <= img.height());
        let pattern = img.crop(0, 0, pw, ph).unwrap();
        let m = match_template(&img, &pattern).unwrap();
        prop_assert!(m.score <= 1.0 + 1e-4, "score {}", m.score);
        prop_assert!(m.score >= -1e-4);
        // A crop of the image itself must match perfectly somewhere.
        prop_assume!(stats(&pattern).variance > 1e-6);
        prop_assert!(m.score > 0.999, "self-crop score {}", m.score);
    }

    #[test]
    fn pyramid_matcher_never_exceeds_exact_by_much(
        img in arb_image(32),
        side in 4usize..10,
    ) {
        prop_assume!(side <= img.width() && side <= img.height());
        let pattern = img.crop(0, 0, side, side).unwrap();
        let exact = match_template(&img, &pattern).unwrap();
        let pyr = match_template_pyramid(&img, &pattern, &PyramidMatchConfig::default()).unwrap();
        // Pyramid is a search heuristic: it can only find scores that
        // exist, so it is bounded above by the exact maximum.
        prop_assert!(pyr.score <= exact.score + 1e-3,
            "pyramid {} > exact {}", pyr.score, exact.score);
    }

    #[test]
    fn split_and_stack_preserves_pixel_count_for_even_width(
        h in 1usize..12,
        half_w in 1usize..12,
        seed in any::<u64>(),
    ) {
        let img = inspector_gadget::imaging::noise::white_noise_image(seed, half_w * 2, h, 0.0, 1.0);
        let stacked = img.split_and_stack();
        prop_assert_eq!(stacked.len(), img.len());
    }

    // ---------------- nn ----------------

    #[test]
    fn softmax_rows_are_distributions(
        rows in 1usize..6,
        cols in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Matrix::from_fn(rows, cols, |_, _| rand::Rng::gen_range(&mut rng, -20.0..20.0f32));
        let p = softmax_rows(&logits);
        for r in 0..rows {
            let sum: f32 = p.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn kfold_is_a_partition(n in 2usize..40, k in 2usize..8, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let folds = kfold(n, k, &mut rng);
        let mut seen = vec![false; n];
        for fold in &folds {
            for &i in &fold.val {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
            for &i in &fold.train {
                prop_assert!(!fold.val.contains(&i));
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn stratified_kfold_keeps_all_samples(
        labels in proptest::collection::vec(0usize..3, 4..30),
        k in 2usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let folds = stratified_kfold(&labels, k, &mut rng);
        let total: usize = folds.iter().map(|f| f.val.len()).sum();
        prop_assert_eq!(total, labels.len());
    }

    // ---------------- matrix ----------------

    #[test]
    fn matmul_associates_with_identity(
        r in 1usize..5,
        c in 1usize..5,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(r, c, |_, _| rand::Rng::gen_range(&mut rng, -1.0..1.0f32));
        let eye = Matrix::from_fn(c, c, |i, j| if i == j { 1.0 } else { 0.0 });
        let product = a.matmul(&eye);
        for (x, y) in a.as_slice().iter().zip(product.as_slice()) {
            prop_assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn transpose_respects_matmul(
        m in 1usize..4,
        n in 1usize..4,
        p in 1usize..4,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, n, |_, _| rand::Rng::gen_range(&mut rng, -1.0..1.0f32));
        let b = Matrix::from_fn(n, p, |_, _| rand::Rng::gen_range(&mut rng, -1.0..1.0f32));
        // (A B)^T = B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }
}
