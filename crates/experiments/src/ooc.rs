//! Out-of-core streaming demo: weak-label an entire corpus while keeping
//! at most one shard of images resident.
//!
//! The paper's datasets fit in memory; an industrial deployment's don't.
//! This driver models that regime honestly: the corpus is never
//! materialized whole during the streaming pass — each shard is
//! regenerated from its spec, prepared, pushed through
//! [`ComputeFeatureShard`] (whose artifact memoizes and persists
//! per-shard), weak-labeled, and dropped before the next shard starts.
//! A monolithic verify pass then recomputes everything in one piece and
//! checks the streamed weak labels and probabilities are bit-identical.
//!
//! The resident-set budget comes from the scale plan (`--scale ooc`
//! defaults to 256 MiB; `--budget BYTES` overrides it at any scale). A
//! budget of `0` yields one shard — the monolithic arm the bench
//! harness compares against. Peak memory is reported twice from
//! `VmHWM`: once right after the streaming pass (the number the bench
//! compares across budgets — the verify pass hasn't inflated it yet)
//! and once at the end.

use crate::common::{f1, ExpEnv, Report};
use ig_core::{
    ComputeFeatureShard, DevSet, FeatureGenerator, HealthReport, InspectorGadget, Pattern,
    PatternSource, PipelineConfig, ShardPlan,
};
use ig_crowd::CrowdWorkflow;
use ig_imaging::GrayImage;
use ig_runtime::infallible;
use ig_synth::spec::DatasetKind;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct OocReport {
    scale: String,
    budget_bytes: u64,
    n: usize,
    dev_n: usize,
    shards: usize,
    per_image_bytes_est: usize,
    f1: f64,
    bit_identical: bool,
    wall_stream_s: f64,
    wall_verify_s: f64,
    vmhwm_stream_kb: Option<u64>,
    vmhwm_end_kb: Option<u64>,
}

/// Peak resident set so far, from `/proc/self/status` (Linux only).
fn vmhwm_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest.split_whitespace().next()?.parse().ok();
        }
    }
    None
}

fn hwm_text(kb: Option<u64>) -> String {
    match kb {
        Some(kb) => format!("{:.1} MiB", kb as f64 / 1024.0),
        None => "n/a".to_string(),
    }
}

pub fn run(env: &ExpEnv) {
    let ctx = &env.ctx;
    let scale = ctx.scale();
    let budget = scale.memory_budget_bytes;
    let kind = DatasetKind::Ksdd;
    let spec = scale.spec(kind, ctx.seed());
    let n = spec.n;
    let mut report = Report::new("ooc", &env.out);
    report.line(format!(
        "Out-of-core streaming over KSDD (N={n}, scale {}, budget {})",
        scale.name(),
        if budget == 0 {
            "unbounded".to_string()
        } else {
            format!("{:.1} MiB", budget as f64 / (1 << 20) as f64)
        },
    ));

    // Development prefix of the (shuffled) corpus, grown until it covers
    // both classes — crowd workers need defectives to crop patterns from.
    let mut dev_n = (scale.dev_defective_target(kind) * 4).clamp(8, n.max(1));
    let mut dev = ig_synth::generate_range(&spec, 0, dev_n);
    loop {
        let mut classes = std::collections::HashSet::new();
        for image in &dev.images {
            classes.insert(image.label);
        }
        if classes.len() >= 2 || dev_n >= n {
            break;
        }
        dev_n = (dev_n * 2).min(n);
        dev = ig_synth::generate_range(&spec, 0, dev_n);
    }
    let num_classes = dev.task.num_classes();
    let dev_refs: Vec<&ig_synth::LabeledImage> = dev.images.iter().collect();
    let dev_labels: Vec<usize> = dev.images.iter().map(|l| l.label).collect();

    let mut rng = StdRng::seed_from_u64(ctx.seed());
    let crowd = CrowdWorkflow::full().run(&dev_refs, &mut rng);
    if crowd.patterns.is_empty() {
        report.line("no crowd patterns extracted; nothing to stream");
        report.finish::<Vec<u8>>(&Vec::new());
        return;
    }
    let patterns = Pattern::wrap_all(crowd.patterns, PatternSource::Crowd);

    // A probe generator measures one image's prepared footprint (the
    // estimate the shard budgeter divides by) and prepares the dev set
    // so training itself takes the sharded path under a tight budget.
    let probe = match FeatureGenerator::new(patterns.clone()) {
        Ok(g) => g,
        Err(e) => {
            report.line(format!("feature generator rejected the bank: {e}"));
            report.finish::<Vec<u8>>(&Vec::new());
            return;
        }
    };
    let dev_images: Vec<&GrayImage> = dev.images.iter().map(|l| &l.image).collect();
    let dev_prepared = probe.prepare_images(&dev_images);
    let per_image = dev_prepared
        .first()
        .map(|p| p.approx_bytes())
        .unwrap_or(1)
        .max(1);

    let config = PipelineConfig {
        tune: false,
        ..Default::default()
    };
    let mut train_rng = StdRng::seed_from_u64(ctx.seed() ^ 0xa5a5);
    let ig = match InspectorGadget::train_in(
        ctx,
        patterns,
        DevSet::Prepared(&dev_prepared),
        &dev_labels,
        num_classes,
        &config,
        &mut train_rng,
    ) {
        Ok(ig) => ig,
        Err(e) => {
            report.line(format!("training failed: {e}"));
            report.finish::<Vec<u8>>(&Vec::new());
            return;
        }
    };
    drop(dev_prepared);
    drop(dev);

    let plan = ShardPlan::for_budget(n, (n as u64) * (per_image as u64), budget);
    report.line(format!(
        "{} shard(s) of <= {} images (~{} KiB prepared per image)",
        plan.count,
        plan.shard(0).len(),
        per_image / 1024,
    ));

    // Streaming pass: regenerate, prepare, match, label, drop — shard by
    // shard. Only the feature rows (durable, shard-keyed) and the weak
    // labels survive a shard's iteration.
    let bank = ig.bank_fingerprint();
    let generator = ig.feature_generator();
    let health = HealthReport::new();
    let started = Instant::now();
    let mut weak = Vec::with_capacity(n);
    let mut probs: Vec<f32> = Vec::with_capacity(n * num_classes);
    let mut gold = Vec::with_capacity(n);
    for shard in plan.shards() {
        let slice = ig_synth::generate_range(&spec, shard.start, shard.end);
        let refs: Vec<&GrayImage> = slice.images.iter().map(|l| &l.image).collect();
        let prepared = generator.prepare_images(&refs);
        let rows = infallible(ctx.run(&mut ComputeFeatureShard::new(
            bank, generator, &prepared, shard, None, &health,
        )));
        let out = ig.label_from_features(&rows);
        weak.extend(out.labels);
        probs.extend_from_slice(out.probabilities.as_slice());
        gold.extend(slice.images.iter().map(|l| l.label));
    }
    let wall_stream = started.elapsed().as_secs_f64();
    let hwm_stream = vmhwm_kb();
    let score = f1(num_classes, &gold, &weak);
    report.line(format!(
        "streamed {} images in {wall_stream:.1}s, weak-label F1 {score:.3}, peak RSS {}",
        weak.len(),
        hwm_text(hwm_stream),
    ));
    ctx.health().merge(&health);

    // Verify pass: the whole corpus in one piece must weak-label
    // bit-identically to the stream.
    let verify_started = Instant::now();
    let whole = ig_synth::generate(&spec);
    let refs: Vec<&GrayImage> = whole.images.iter().map(|l| &l.image).collect();
    let prepared = generator.prepare_images(&refs);
    let mono = ig.label_prepared(&prepared);
    let wall_verify = verify_started.elapsed().as_secs_f64();
    let bit_identical = mono.labels == weak && mono.probabilities.as_slice() == probs.as_slice();
    let hwm_end = vmhwm_kb();
    report.line(format!(
        "monolithic verify in {wall_verify:.1}s: bit-identical {}  (peak RSS now {})",
        if bit_identical { "yes" } else { "NO" },
        hwm_text(hwm_end),
    ));

    report.finish(&OocReport {
        scale: scale.name().to_string(),
        budget_bytes: budget,
        n,
        dev_n,
        shards: plan.count,
        per_image_bytes_est: per_image,
        f1: score,
        bit_identical,
        wall_stream_s: wall_stream,
        wall_verify_s: wall_verify,
        vmhwm_stream_kb: hwm_stream,
        vmhwm_end_kb: hwm_end,
    });
    if !bit_identical {
        eprintln!("error: streamed weak labels diverged from the monolithic pass");
        std::process::exit(1);
    }
}
