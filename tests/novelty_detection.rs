//! Integration test for the novel-defect extension (paper Section 7:
//! Inspector Gadget "can be extended with [novel class detection]
//! techniques").
//!
//! [`NoveltyDetector`] is feature-agnostic. Two feature choices cover the
//! two practical questions:
//!
//! * **out-of-domain inputs** — images from a strip/defect family the
//!   system was never configured for. GOGGLES-style prototype features
//!   capture global appearance, so a detector fit on them flags foreign
//!   images reliably (tested here);
//! * **in-domain outliers** — the same machinery applied to FGF
//!   similarity vectors flags images whose defects match no pattern
//!   (unit-tested in `ig-core::novelty`).

use inspector_gadget::baselines::goggles::{Goggles, GogglesConfig};
use inspector_gadget::core::NoveltyDetector;
use inspector_gadget::nn::Matrix;
use inspector_gadget::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn prototype_features(images: &[&GrayImage], config: &GogglesConfig) -> Matrix {
    let rows: Vec<Vec<f32>> = images
        .iter()
        .map(|img| Goggles::extract_features(img, config))
        .collect();
    Matrix::from_rows(&rows)
}

#[test]
fn out_of_domain_defect_family_is_flagged_more_often() {
    let mut _rng = StdRng::seed_from_u64(7);
    let scratch = inspector_gadget::synth::generate(&DatasetSpec {
        n: 50,
        n_defective: 25,
        noisy_fraction: 0.0,
        difficult_fraction: 0.0,
        ..DatasetSpec::quick(DatasetKind::ProductScratch, 70)
    });
    // A different product strip with a defect family the system has never
    // been configured for.
    let bubble = inspector_gadget::synth::generate(&DatasetSpec {
        n: 30,
        n_defective: 30,
        noisy_fraction: 0.0,
        difficult_fraction: 0.0,
        ..DatasetSpec::quick(DatasetKind::ProductBubble, 71)
    });

    let goggles_config = GogglesConfig::default();
    let dev: Vec<&GrayImage> = scratch.images[..25].iter().map(|l| &l.image).collect();
    let dev_features = prototype_features(&dev, &goggles_config);
    let detector = NoveltyDetector::fit(&dev_features, 0.9);

    // In-distribution probe: the remaining scratch images.
    let scratch_rest: Vec<&GrayImage> = scratch.images[25..].iter().map(|l| &l.image).collect();
    let scratch_flags = detector.flag(&prototype_features(&scratch_rest, &goggles_config));
    let scratch_rate =
        scratch_flags.iter().filter(|&&f| f).count() as f64 / scratch_flags.len() as f64;

    // Out-of-domain probe.
    let bubble_imgs: Vec<&GrayImage> = bubble.images.iter().map(|l| &l.image).collect();
    let bubble_flags = detector.flag(&prototype_features(&bubble_imgs, &goggles_config));
    let bubble_rate =
        bubble_flags.iter().filter(|&&f| f).count() as f64 / bubble_flags.len() as f64;

    assert!(
        bubble_rate > scratch_rate + 0.2,
        "out-of-domain flag rate {bubble_rate:.2} should clearly exceed \
         in-distribution rate {scratch_rate:.2}"
    );
    assert!(
        scratch_rate < 0.5,
        "in-distribution flag rate too high: {scratch_rate:.2}"
    );
}
