//! The invariant rules. Each rule is a pure function from a
//! [`FileContext`] to diagnostics; suppression via allow annotations and
//! malformed-annotation reporting happen in the shared runner here.

mod d1_nondeterminism;
mod d2_hash_iter;
mod n1_float_eq;
mod n2_lossy_cast;
mod p1_panic;

use crate::context::{FileClass, FileContext};
use crate::report::Diagnostic;

/// Canonical rule names, as written in `allow(…)` annotations.
///
/// `bad-annotation` is reserved for the runner itself and cannot be
/// allowed away.
pub const RULE_NAMES: &[&str] = &[
    "nondeterminism", // D1
    "hash-iter",      // D2
    "panic",          // P1
    "float-eq",       // N1
    "lossy-cast",     // N2
];

/// Run every rule over one file, honoring allow annotations, and report
/// malformed annotations as violations in their own right.
pub fn check_file(ctx: &FileContext) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    d1_nondeterminism::check(ctx, &mut raw);
    d2_hash_iter::check(ctx, &mut raw);
    p1_panic::check(ctx, &mut raw);
    n1_float_eq::check(ctx, &mut raw);
    n2_lossy_cast::check(ctx, &mut raw);

    let mut out: Vec<Diagnostic> = raw
        .into_iter()
        .filter(|d| !ctx.allows.is_allowed(&d.rule, d.line))
        .collect();

    // Annotation hygiene only matters where annotations have force; exempt
    // crates (including this linter, whose docs discuss the syntax) are not
    // policed.
    if ctx.class != FileClass::Exempt {
        for bad in &ctx.allows.bad {
            out.push(Diagnostic {
                rule: "bad-annotation".to_string(),
                path: ctx.path.to_string(),
                line: bad.line,
                col: 1,
                message: bad.problem.clone(),
            });
        }
    }

    out.sort_by(|a, b| (a.line, a.col, &a.rule).cmp(&(b.line, b.col, &b.rule)));
    out
}

/// One-line description of each rule, for `ig-lint rules` and the report.
pub fn rule_descriptions() -> Vec<(&'static str, &'static str)> {
    vec![
        (
            "nondeterminism",
            "no thread_rng()/from_entropy()/SystemTime::now()/Instant::now() outside \
             crates/experiments, crates/bench, and examples — clean runs must be \
             bit-for-bit reproducible from the seed alone",
        ),
        (
            "hash-iter",
            "no iteration over HashMap/HashSet in result-producing code — iteration \
             order is randomized per process; use BTreeMap or sort first",
        ),
        (
            "panic",
            "no unwrap()/expect()/panic!/slice-indexing-by-literal in library crates \
             outside #[cfg(test)] — recovery ladders need Result, not aborts",
        ),
        (
            "float-eq",
            "no bare float ==/!= — use ig_imaging::stats::{approx_eq, is_effectively_zero}",
        ),
        (
            "lossy-cast",
            "no truncating float->int `as` casts in the imaging/nn hot paths — round \
             explicitly or annotate why truncation is intended",
        ),
        (
            "bad-annotation",
            "every `ig-lint: allow(...)` must list known rules and carry a `-- reason`",
        ),
    ]
}
