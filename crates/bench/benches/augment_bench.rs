//! Augmentation throughput: policy transforms per second, RGAN training
//! cost, and RGAN sampling cost — the Section 4 efficiency claims
//! ("augmenting small patterns instead of the entire images").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ig_augment::gan::{Rgan, RganConfig};
use ig_augment::policy::{policy_augment, Policy, PolicyOp};
use ig_bench::defect_pattern;
use ig_imaging::GrayImage;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn patterns(n: usize) -> Vec<GrayImage> {
    (0..n).map(|i| defect_pattern(12, i as u64)).collect()
}

fn bench_policy_throughput(c: &mut Criterion) {
    let pats = patterns(10);
    let combo = vec![
        Policy {
            op: PolicyOp::Rotate,
            magnitude: 12.0,
        },
        Policy {
            op: PolicyOp::ResizeX,
            magnitude: 1.3,
        },
        Policy {
            op: PolicyOp::Brightness,
            magnitude: 1.1,
        },
    ];
    let mut group = c.benchmark_group("policy_augment");
    group.throughput(Throughput::Elements(100));
    group.bench_function("100_patterns", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            policy_augment(&pats, &combo, 100, &mut rng)
        })
    });
    group.finish();
}

fn bench_gan(c: &mut Criterion) {
    let mut group = c.benchmark_group("rgan");
    group.sample_size(10);
    // Training cost scales with pattern size — the reason the paper
    // augments patterns, not whole images.
    for side in [8usize, 16] {
        group.bench_with_input(BenchmarkId::new("train", side), &side, |b, &side| {
            let pats = patterns(10);
            let config = RganConfig {
                pattern_side: side,
                epochs: 30,
                ..RganConfig::quick()
            };
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(2);
                Rgan::train(&pats, &config, &mut rng)
            })
        });
    }
    group.bench_function("sample_100", |b| {
        let pats = patterns(10);
        let mut rng = StdRng::seed_from_u64(3);
        let gan = Rgan::train(&pats, &RganConfig::quick(), &mut rng);
        b.iter(|| gan.generate(100, &mut rng))
    });
    group.finish();
}

criterion_group!(benches, bench_policy_throughput, bench_gan);
criterion_main!(benches);
