//! End-to-end durability drills against the public runtime API: a killed
//! sweep resumes bit-identically from the durable tier, corruption is
//! quarantined and recomputed through, injected storage faults (torn
//! writes, bit flips, stale locks) are survived and recorded, and the
//! LRU memory tier composes with the disk tier (evicted artifacts come
//! back from disk, not from a recompute).

use core::convert::Infallible;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction};
use ig_runtime::{
    infallible, Dec, DiskStore, Enc, Fingerprint, Fingerprintable, RunContext, Stage,
};

/// Cacheable durable stage: output is a pure function of `input` and the
/// run seed; `calls` counts real executions, so a disk hit (no recompute)
/// is observable.
struct Summer<'a> {
    input: Vec<u64>,
    calls: &'a AtomicUsize,
}

impl Stage for Summer<'_> {
    type Output = Vec<u64>;
    type Error = Infallible;

    fn id(&self) -> &'static str {
        "it.summer"
    }

    fn fingerprint(&self) -> Fingerprint {
        self.input.fingerprint()
    }

    fn plan_sensitive(&self) -> bool {
        false
    }

    fn run(&mut self, ctx: &RunContext) -> Result<Vec<u64>, Infallible> {
        self.calls.fetch_add(1, Ordering::Relaxed);
        let mut acc = ctx.seed();
        Ok(self
            .input
            .iter()
            .map(|v| {
                acc = acc.wrapping_add(*v);
                acc
            })
            .collect())
    }

    fn encode(&self, output: &Vec<u64>) -> Option<Vec<u8>> {
        let mut enc = Enc::new();
        enc.put_usize(output.len());
        for &v in output {
            enc.put_u64(v);
        }
        Some(enc.into_bytes())
    }

    fn decode(&self, bytes: &[u8]) -> Option<Vec<u64>> {
        let mut dec = Dec::new(bytes);
        let len = dec.usize_()?;
        let mut out = Vec::new();
        for _ in 0..len {
            out.push(dec.u64()?);
        }
        dec.done().then_some(out)
    }
}

fn fresh_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("ig-dur-{tag}-{}", std::process::id()));
    match std::fs::remove_dir_all(&root) {
        // Leftovers from a previous run of this same test, if any.
        Ok(()) | Err(_) => {}
    }
    root
}

fn open_store(root: &std::path::Path) -> Arc<DiskStore> {
    match DiskStore::open(root) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            assert!(false, "store open failed: {e}");
            unreachable!()
        }
    }
}

fn stage_inputs() -> Vec<Vec<u64>> {
    (0..16u64).map(|i| vec![i, i * 3 + 1, i ^ 0xff]).collect()
}

/// A "sweep" killed halfway through resumes from the durable store: the
/// finished half comes back without recomputation, the rest computes
/// fresh, and every artifact is bit-identical to an uninterrupted run.
#[test]
fn killed_sweep_resumes_bit_identically() {
    let root = fresh_root("resume");
    let inputs = stage_inputs();

    // Reference: the uninterrupted run.
    let reference: Vec<Vec<u64>> = {
        let calls = AtomicUsize::new(0);
        let ctx = RunContext::new(11);
        inputs
            .iter()
            .map(|input| {
                (*infallible(ctx.run(&mut Summer {
                    input: input.clone(),
                    calls: &calls,
                })))
                .clone()
            })
            .collect()
    };

    // "Crash": a store-backed context that only gets through half the
    // sweep before being dropped.
    let calls = AtomicUsize::new(0);
    {
        let ctx = RunContext::new(11).with_disk(open_store(&root));
        for input in inputs.iter().take(8) {
            let _done = infallible(ctx.run(&mut Summer {
                input: input.clone(),
                calls: &calls,
            }));
        }
    }
    assert_eq!(calls.load(Ordering::Relaxed), 8);

    // Resume: a fresh process (fresh context + reopened store) finishes
    // the sweep. Only the unfinished half runs.
    let disk = open_store(&root);
    let resumed_ctx = RunContext::new(11).with_disk(Arc::clone(&disk));
    let resumed: Vec<Vec<u64>> = inputs
        .iter()
        .map(|input| {
            (*infallible(resumed_ctx.run(&mut Summer {
                input: input.clone(),
                calls: &calls,
            })))
            .clone()
        })
        .collect();
    assert_eq!(resumed, reference, "resume must be bit-identical");
    assert_eq!(calls.load(Ordering::Relaxed), 16, "half hit, half computed");
    assert_eq!(disk.stats().hits, 8);
    assert!(resumed_ctx.health().is_clean());
}

/// Injected storage faults: a plan tearing, bit-flipping and
/// stale-locking writes cannot corrupt results. The faulted cold run and
/// the warm rerun both produce clean outputs, and the health report
/// names every fault class with its recovery.
#[test]
fn injected_store_faults_are_survived_and_recorded() {
    let root = fresh_root("inject");
    let inputs = stage_inputs();
    let keyer = RunContext::new(11);
    let key_calls = AtomicUsize::new(0);
    let keys: Vec<u64> = inputs
        .iter()
        .map(|input| {
            keyer
                .cache_key_for(&Summer {
                    input: input.clone(),
                    calls: &key_calls,
                })
                .lo
        })
        .collect();
    // A plan whose deterministic draws hit every fault class over these
    // sixteen artifacts (and leave at least one intact).
    let plan = (0..10_000u64)
        .map(FaultPlan::durability)
        .find(|p| {
            keys.iter().any(|&k| p.torn_write(k))
                && keys.iter().any(|&k| p.artifact_bitflip(k))
                && keys.iter().any(|&k| p.stale_lock(k))
                && keys
                    .iter()
                    .any(|&k| !p.torn_write(k) && !p.artifact_bitflip(k))
        })
        .expect("some durability seed covers every fault class");

    let reference: Vec<Vec<u64>> = inputs
        .iter()
        .map(|input| {
            (*infallible(keyer.run(&mut Summer {
                input: input.clone(),
                calls: &key_calls,
            })))
            .clone()
        })
        .collect();

    // Cold pass: every write goes through the faulted store.
    let calls = AtomicUsize::new(0);
    let cold_ctx = RunContext::new(11)
        .with_plan(Some(plan.clone()))
        .with_disk(open_store(&root));
    let cold: Vec<Vec<u64>> = inputs
        .iter()
        .map(|input| {
            (*infallible(cold_ctx.run(&mut Summer {
                input: input.clone(),
                calls: &calls,
            })))
            .clone()
        })
        .collect();
    assert_eq!(cold, reference, "faulted writes never affect results");
    assert!(
        cold_ctx.health().count(FaultKind::StaleLock) >= 1,
        "planted stale locks are detected on write"
    );
    assert!(
        cold_ctx
            .health()
            .count_action(RecoveryAction::BrokeStaleLock)
            >= 1
    );

    // Warm pass: a fresh context over the damaged store. Torn and
    // bit-flipped artifacts are quarantined and recomputed; intact ones
    // are served from disk.
    let disk = open_store(&root);
    let warm_ctx = RunContext::new(11)
        .with_plan(Some(plan))
        .with_disk(Arc::clone(&disk));
    let warm: Vec<Vec<u64>> = inputs
        .iter()
        .map(|input| {
            (*infallible(warm_ctx.run(&mut Summer {
                input: input.clone(),
                calls: &calls,
            })))
            .clone()
        })
        .collect();
    assert_eq!(warm, reference, "recovery is transparent");
    assert!(warm_ctx.health().count(FaultKind::ArtifactCorruption) >= 1);
    assert!(
        warm_ctx
            .health()
            .count_action(RecoveryAction::QuarantinedArtifact)
            >= 1
    );
    let stats = disk.stats();
    assert!(stats.hits >= 1, "intact artifacts come back from disk");
    assert!(stats.quarantined >= 1);
    // Quarantined copies are preserved for post-mortems.
    let quarantine = disk.root().join("_quarantine");
    match std::fs::read_dir(quarantine) {
        Ok(entries) => assert!(entries.count() >= 1),
        Err(e) => assert!(false, "quarantine dir missing: {e}"),
    }
}

/// LRU + disk composition: with a tiny memory tier, evicted artifacts
/// come back from the durable tier without recomputation.
#[test]
fn evicted_artifacts_reload_from_disk_not_recompute() {
    let root = fresh_root("lru");
    let inputs = stage_inputs();
    let calls = AtomicUsize::new(0);
    let disk = open_store(&root);
    let ctx = RunContext::new(11)
        .with_disk(Arc::clone(&disk))
        .with_store_capacity(2);
    for input in &inputs {
        let _fill = infallible(ctx.run(&mut Summer {
            input: input.clone(),
            calls: &calls,
        }));
    }
    assert_eq!(calls.load(Ordering::Relaxed), 16);
    assert!(ctx.store().len() <= 2, "memory tier stays bounded");
    assert!(ctx.store().evictions() > 0);
    // Revisit everything: long-evicted artifacts must come from disk.
    for input in &inputs {
        let _again = infallible(ctx.run(&mut Summer {
            input: input.clone(),
            calls: &calls,
        }));
    }
    assert_eq!(
        calls.load(Ordering::Relaxed),
        16,
        "no recompute on revisit: memory hit or disk hit"
    );
    assert!(disk.stats().hits >= 14, "most revisits served from disk");
}
