//! End discriminative models (Section 6.6, Table 5).
//!
//! The question the paper asks last: are the weak labels actually useful?
//! Train the end CNN once on the development set alone and once on the
//! development set plus Inspector Gadget's weak labels, and compare F1 on
//! held-out test data.

use crate::cnn_models::CnnArch;
use crate::selflearn::{SelfLearnConfig, SelfLearner};
use ig_eval::metrics::{binary_f1, macro_f1};
use ig_imaging::GrayImage;
use rand::Rng;

/// Train an end model on (images, labels) and score F1 on the test set.
#[allow(clippy::too_many_arguments)]
pub fn train_and_score(
    arch: CnnArch,
    train_images: &[&GrayImage],
    train_labels: &[usize],
    test_images: &[&GrayImage],
    test_labels: &[usize],
    num_classes: usize,
    config: &SelfLearnConfig,
    rng: &mut impl Rng,
) -> f64 {
    let mut model = SelfLearner::train(arch, train_images, train_labels, num_classes, config, rng);
    let preds = model.label(test_images);
    score_f1(num_classes, test_labels, &preds)
}

/// Task-appropriate F1: positive-class for binary, macro for multi-class.
pub fn score_f1(num_classes: usize, gold: &[usize], pred: &[usize]) -> f64 {
    if num_classes == 2 {
        let g: Vec<bool> = gold.iter().map(|&v| v == 1).collect();
        let p: Vec<bool> = pred.iter().map(|&v| v == 1).collect();
        binary_f1(&g, &p).f1
    } else {
        macro_f1(num_classes, gold, pred)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn score_f1_dispatches_binary_and_macro() {
        let gold = [0usize, 1, 1, 0];
        assert_eq!(score_f1(2, &gold, &gold), 1.0);
        let gold3 = [0usize, 1, 2, 0];
        assert_eq!(score_f1(3, &gold3, &gold3), 1.0);
        let wrong = [1usize, 0, 0, 1];
        assert_eq!(score_f1(2, &gold, &wrong), 0.0);
    }

    #[test]
    fn more_training_data_helps_the_end_model() {
        // The Table 5 mechanism in miniature: a model trained on dev+weak
        // (larger, slightly noisy) beats the tiny-dev model.
        let make = |n: usize, seed: u64| -> (Vec<GrayImage>, Vec<usize>) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut images = Vec::new();
            let mut labels = Vec::new();
            for i in 0..n {
                let pos = i % 2 == 1;
                let img = GrayImage::from_fn(16, 16, |x, _| {
                    let noise = rng.gen_range(-0.08..0.08f32);
                    if pos && (5..11).contains(&x) {
                        0.85 + noise
                    } else {
                        0.4 + noise
                    }
                });
                images.push(img);
                labels.push(usize::from(pos));
            }
            (images, labels)
        };
        let config = SelfLearnConfig {
            side: 16,
            epochs: 10,
            ..Default::default()
        };
        let (test_images, test_labels) = make(40, 99);
        let test_refs: Vec<&GrayImage> = test_images.iter().collect();

        let mut small_total = 0.0;
        let mut big_total = 0.0;
        for seed in 0..3u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (small_images, small_labels) = make(6, 10 + seed);
            let small_refs: Vec<&GrayImage> = small_images.iter().collect();
            small_total += train_and_score(
                CnnArch::MiniVgg,
                &small_refs,
                &small_labels,
                &test_refs,
                &test_labels,
                2,
                &config,
                &mut rng,
            );
            let (big_images, mut big_labels) = make(60, 20 + seed);
            // Corrupt 10% of the big set's labels to mimic weak labels.
            for l in big_labels.iter_mut().step_by(10) {
                *l = 1 - *l;
            }
            let big_refs: Vec<&GrayImage> = big_images.iter().collect();
            big_total += train_and_score(
                CnnArch::MiniVgg,
                &big_refs,
                &big_labels,
                &test_refs,
                &test_labels,
                2,
                &config,
                &mut rng,
            );
        }
        assert!(
            big_total >= small_total,
            "dev+weak {big_total:.3} vs dev-only {small_total:.3}"
        );
    }
}
