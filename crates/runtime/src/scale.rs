//! Experiment scale plans: every dataset/budget knob in one place.
//!
//! Before the runtime existed each experiment driver re-derived dataset
//! sizes, dev-set targets, augmentation budgets and CNN epochs from a
//! local `Scale` enum; the [`ScalePlan`] carried by
//! [`crate::RunContext`] is the single copy they all consume now.

use crate::fingerprint::{FingerprintHasher, Fingerprintable};
use ig_synth::spec::{DatasetKind, DatasetSpec};

/// Named fidelity tier (how close to Table 1's `N` a run is).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleTier {
    /// Tiny — smoke-test in seconds (CI runs this as `tiny`).
    Quick,
    /// Paper class ratios at reduced `N` — the default; a full run takes
    /// CPU-minutes.
    Medium,
    /// Table 1's exact `N`/`N_D` (reduced resolution) — slow.
    Paper,
    /// Out-of-core: paper-scale datasets streamed through the stage graph
    /// in shards sized to [`ScalePlan::memory_budget_bytes`]. The tier
    /// past `paper` — same data, bounded resident set.
    Ooc,
}

/// Dataset-scaling knobs consumed via [`crate::RunContext::scale`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalePlan {
    /// Fidelity tier driving the dataset specs.
    pub tier: ScaleTier,
    /// Augmented-pattern budget per run.
    pub augment_budget: usize,
    /// Epochs for the CNN end-model baselines.
    pub cnn_epochs: usize,
    /// Resident-set budget for sharded execution, in bytes; `0` means
    /// unbounded (monolithic). The shard budgeter
    /// ([`crate::shard::ShardPlan`]) divides a dataset's estimated bytes
    /// by this to pick the shard count.
    pub memory_budget_bytes: u64,
}

impl ScalePlan {
    /// Smoke-test plan.
    pub fn quick() -> ScalePlan {
        ScalePlan {
            tier: ScaleTier::Quick,
            augment_budget: 16,
            cnn_epochs: 6,
            memory_budget_bytes: 0,
        }
    }

    /// Default experiment plan.
    pub fn medium() -> ScalePlan {
        ScalePlan {
            tier: ScaleTier::Medium,
            augment_budget: 60,
            cnn_epochs: 20,
            memory_budget_bytes: 0,
        }
    }

    /// Paper-scale plan.
    pub fn paper() -> ScalePlan {
        ScalePlan {
            tier: ScaleTier::Paper,
            augment_budget: 150,
            cnn_epochs: 30,
            memory_budget_bytes: 0,
        }
    }

    /// Out-of-core plan: paper-scale datasets with a bounded resident
    /// set (default 256 MiB, override with
    /// [`ScalePlan::with_memory_budget`]).
    pub fn ooc() -> ScalePlan {
        ScalePlan {
            tier: ScaleTier::Ooc,
            augment_budget: 150,
            cnn_epochs: 30,
            memory_budget_bytes: 256 << 20,
        }
    }

    /// Same plan with a different resident-set budget (`0` = unbounded).
    pub fn with_memory_budget(self, bytes: u64) -> ScalePlan {
        ScalePlan {
            memory_budget_bytes: bytes,
            ..self
        }
    }

    /// Parse CLI text (`tiny` is an alias of `quick` for CI jobs).
    /// Unknown tiers name the valid set so drivers can surface the
    /// message instead of silently falling back.
    pub fn parse(s: &str) -> Result<ScalePlan, String> {
        match s {
            "tiny" | "quick" => Ok(ScalePlan::quick()),
            "medium" => Ok(ScalePlan::medium()),
            "paper" => Ok(ScalePlan::paper()),
            "ooc" => Ok(ScalePlan::ooc()),
            other => Err(format!(
                "unknown scale tier `{other}` (valid: tiny|quick|medium|paper|ooc)"
            )),
        }
    }

    /// Canonical name of the tier.
    pub fn name(&self) -> &'static str {
        match self.tier {
            ScaleTier::Quick => "quick",
            ScaleTier::Medium => "medium",
            ScaleTier::Paper => "paper",
            ScaleTier::Ooc => "ooc",
        }
    }

    /// Dataset spec for a kind at this scale. The `ooc` tier streams the
    /// paper-scale datasets — same data, bounded memory.
    pub fn spec(&self, kind: DatasetKind, seed: u64) -> DatasetSpec {
        match self.tier {
            ScaleTier::Quick => DatasetSpec::quick(kind, seed),
            ScaleTier::Medium => DatasetSpec::medium(kind, seed),
            ScaleTier::Paper | ScaleTier::Ooc => DatasetSpec::paper(kind, seed),
        }
    }

    /// Target number of defective dev images (Table 1's `N_DV`), scaled.
    pub fn dev_defective_target(&self, kind: DatasetKind) -> usize {
        let paper = match kind {
            DatasetKind::Ksdd => 10,
            DatasetKind::ProductScratch => 76,
            DatasetKind::ProductBubble => 10,
            DatasetKind::ProductStamping => 15,
            DatasetKind::Neu => 100, // per class
        };
        match self.tier {
            ScaleTier::Quick => match kind {
                DatasetKind::Neu => 3,
                _ => (paper / 8).max(3),
            },
            ScaleTier::Medium => match kind {
                DatasetKind::Ksdd => 8,
                DatasetKind::ProductScratch => 20,
                DatasetKind::ProductBubble => 8,
                DatasetKind::ProductStamping => 10,
                DatasetKind::Neu => 25,
            },
            ScaleTier::Paper | ScaleTier::Ooc => paper,
        }
    }
}

impl Fingerprintable for ScalePlan {
    fn fingerprint_into(&self, h: &mut FingerprintHasher) {
        h.write_u64(match self.tier {
            ScaleTier::Quick => 0,
            ScaleTier::Medium => 1,
            ScaleTier::Paper => 2,
            ScaleTier::Ooc => 3,
        });
        h.write_usize(self.augment_budget);
        h.write_usize(self.cnn_epochs);
        h.write_u64(self.memory_budget_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_tiny_alias() {
        assert_eq!(ScalePlan::parse("tiny"), Ok(ScalePlan::quick()));
        assert_eq!(ScalePlan::parse("quick"), Ok(ScalePlan::quick()));
        assert_eq!(ScalePlan::parse("medium"), Ok(ScalePlan::medium()));
        assert_eq!(ScalePlan::parse("paper"), Ok(ScalePlan::paper()));
        assert_eq!(ScalePlan::parse("ooc"), Ok(ScalePlan::ooc()));
    }

    #[test]
    fn parse_rejection_names_the_valid_tiers() {
        let err = match ScalePlan::parse("huge") {
            Ok(_) => String::new(),
            Err(e) => e,
        };
        assert!(err.contains("huge"), "names the offending input: {err}");
        for tier in ["tiny", "quick", "medium", "paper", "ooc"] {
            assert!(err.contains(tier), "names `{tier}`: {err}");
        }
    }

    #[test]
    fn ooc_streams_the_paper_datasets_under_a_budget() {
        let plan = ScalePlan::ooc();
        let kind = DatasetKind::ProductScratch;
        assert_eq!(plan.spec(kind, 1), DatasetSpec::paper(kind, 1));
        assert_eq!(plan.dev_defective_target(kind), 76);
        assert!(plan.memory_budget_bytes > 0, "ooc is budgeted by default");
        let tight = plan.with_memory_budget(1 << 20);
        assert_eq!(tight.memory_budget_bytes, 1 << 20);
        assert_ne!(
            plan.fingerprint(),
            tight.fingerprint(),
            "budget reaches the plan fingerprint"
        );
    }

    #[test]
    fn budgets_grow_with_tier() {
        assert!(ScalePlan::quick().augment_budget < ScalePlan::medium().augment_budget);
        assert!(ScalePlan::medium().augment_budget < ScalePlan::paper().augment_budget);
        assert!(ScalePlan::quick().cnn_epochs < ScalePlan::paper().cnn_epochs);
    }

    #[test]
    fn specs_follow_tier() {
        let kind = DatasetKind::Ksdd;
        assert_eq!(
            ScalePlan::quick().spec(kind, 1),
            DatasetSpec::quick(kind, 1)
        );
        assert_eq!(
            ScalePlan::paper().spec(kind, 1),
            DatasetSpec::paper(kind, 1)
        );
    }

    #[test]
    fn dev_target_matches_paper_at_paper_tier() {
        let plan = ScalePlan::paper();
        assert_eq!(plan.dev_defective_target(DatasetKind::ProductScratch), 76);
        assert_eq!(plan.dev_defective_target(DatasetKind::Neu), 100);
    }
}
