//! # ig-imaging
//!
//! From-scratch grayscale image substrate for the Inspector Gadget
//! reproduction (Heo et al., VLDB 2020).
//!
//! The paper's pipeline leans on OpenCV for three things: image I/O and
//! manipulation, normalized cross-correlation template matching
//! (`TM_CCORR_NORMED`), and pyramid-accelerated search. This crate rebuilds
//! those pieces in pure Rust:
//!
//! * [`GrayImage`] — a dense `f32` grayscale image with drawing, cropping
//!   and compositing primitives,
//! * [`resize`] — nearest-neighbour and bilinear resampling,
//! * [`filter`] — separable box / Gaussian blur and generic convolution,
//! * [`pyramid`] — Gaussian pyramids (Adelson et al., 1984),
//! * [`ncc`] — normalized cross-correlation matching, both brute force and
//!   coarse-to-fine over a pyramid,
//! * [`integral`] — integral images used to accelerate the NCC denominator,
//! * [`prepared`] — batched matching: per-image pyramid/integral caches and
//!   per-pattern reduced/centred stacks built once and reused across the
//!   whole (image × pattern) grid,
//! * [`transform`] — affine warps (rotation, shear, anisotropic scaling)
//!   used by the policy-based pattern augmenter,
//! * [`noise`] — value noise / fractional Brownian motion for the synthetic
//!   industrial textures in `ig-synth`,
//! * [`geometry`] — axis-aligned bounding boxes shared by the whole
//!   workspace (gold defect boxes, worker annotations, patterns),
//! * [`io`] — minimal PGM read/write for inspecting generated images.

#![warn(missing_docs)]

pub mod fft;
pub mod filter;
pub mod geometry;
pub mod image;
pub mod integral;
pub mod io;
pub mod ncc;
pub mod noise;
pub mod planner;
pub mod prepared;
pub mod pyramid;
pub mod resize;
pub mod stats;
pub mod transform;

pub use geometry::BBox;
pub use image::GrayImage;
pub use ncc::{match_template, match_template_pyramid, MatchResult};
pub use prepared::{
    match_prepared, match_prepared_exact, score_map_prepared, PreparedImage, PreparedPattern,
};

/// Errors produced by imaging operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ImagingError {
    /// An operation received an image or pattern with a zero dimension.
    EmptyImage,
    /// The template is larger than the search image in at least one axis.
    TemplateTooLarge {
        /// Template width and height.
        template: (usize, usize),
        /// Image width and height.
        image: (usize, usize),
    },
    /// A crop or paste rectangle does not fit inside the image bounds.
    OutOfBounds {
        /// The offending rectangle `(x, y, w, h)`.
        rect: (usize, usize, usize, usize),
        /// Image width and height.
        image: (usize, usize),
    },
    /// A dimension argument was zero or otherwise invalid.
    InvalidDimension(String),
}

impl std::fmt::Display for ImagingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ImagingError::EmptyImage => write!(f, "image has a zero dimension"),
            ImagingError::TemplateTooLarge { template, image } => write!(
                f,
                "template {}x{} larger than image {}x{}",
                template.0, template.1, image.0, image.1
            ),
            ImagingError::OutOfBounds { rect, image } => write!(
                f,
                "rect ({}, {}, {}, {}) out of bounds for {}x{} image",
                rect.0, rect.1, rect.2, rect.3, image.0, image.1
            ),
            ImagingError::InvalidDimension(msg) => write!(f, "invalid dimension: {msg}"),
        }
    }
}

impl std::error::Error for ImagingError {}

/// Convenience alias for imaging results.
pub type Result<T> = std::result::Result<T, ImagingError>;
