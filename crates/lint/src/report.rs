//! Diagnostics, rustc-style rendering, and the JSON report.
//!
//! The JSON is written by hand: the workspace's `serde_json` is an offline
//! stub, and the report is flat enough that a small escaper is all the
//! machinery needed.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Canonical rule name (`panic`, `float-eq`, …).
    pub rule: String,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Diagnostic {
    /// Render in rustc's `error[code]: message\n --> file:line:col` shape so
    /// editors and CI annotators pick the locations up.
    pub fn render(&self) -> String {
        format!(
            "error[{}]: {}\n  --> {}:{}:{}",
            self.rule, self.message, self.path, self.line, self.col
        )
    }
}

/// A surviving (used, well-formed) allow annotation, listed in the report
/// so reviewers can audit every suppression and its reason.
#[derive(Debug, Clone)]
pub struct ReportedAllow {
    pub path: String,
    pub line: u32,
    pub rules: Vec<String>,
    pub reason: String,
    /// FNV-1a 64 of the suppressed line's content (annotation stripped) —
    /// the baseline ledger's rename-stable identity key.
    pub content_hash: u64,
}

/// Full analyzer output for one run.
#[derive(Debug, Default)]
pub struct Report {
    pub files_scanned: usize,
    pub violations: Vec<Diagnostic>,
    pub allows: Vec<ReportedAllow>,
}

impl Report {
    /// Per-rule violation counts, sorted by rule name.
    pub fn counts(&self) -> BTreeMap<&str, usize> {
        let mut m = BTreeMap::new();
        for d in &self.violations {
            *m.entry(d.rule.as_str()).or_insert(0) += 1;
        }
        m
    }

    /// Serialize the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        let _ = writeln!(s, "  \"tool\": \"ig-lint\",");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        let _ = writeln!(s, "  \"violation_count\": {},", self.violations.len());

        s.push_str("  \"violations_by_rule\": {");
        let counts = self.counts();
        let mut first = true;
        for (rule, n) in &counts {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    {}: {}", json_str(rule), n);
        }
        s.push_str(if counts.is_empty() {
            "},\n"
        } else {
            "\n  },\n"
        });

        s.push_str("  \"violations\": [");
        for (i, d) in self.violations.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"rule\": {}, \"path\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}",
                json_str(&d.rule),
                json_str(&d.path),
                d.line,
                d.col,
                json_str(&d.message)
            );
        }
        s.push_str(if self.violations.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });

        s.push_str("  \"allows\": [");
        for (i, a) in self.allows.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let rules = a
                .rules
                .iter()
                .map(|r| json_str(r))
                .collect::<Vec<_>>()
                .join(", ");
            let _ = write!(
                s,
                "\n    {{\"path\": {}, \"line\": {}, \"rules\": [{}], \"hash\": \"{:016x}\", \"reason\": {}}}",
                json_str(&a.path),
                a.line,
                rules,
                a.content_hash,
                json_str(&a.reason)
            );
        }
        s.push_str(if self.allows.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        s.push('}');
        s.push('\n');
        s
    }
}

/// JSON string literal with the escapes the report can actually contain.
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_is_rustc_shaped() {
        let d = Diagnostic {
            rule: "panic".into(),
            path: "crates/core/src/labeler.rs".into(),
            line: 88,
            col: 17,
            message: "boom".into(),
        };
        let r = d.render();
        assert!(r.starts_with("error[panic]: boom"));
        assert!(r.contains("--> crates/core/src/labeler.rs:88:17"));
    }

    #[test]
    fn json_escapes_quotes_and_backslashes() {
        assert_eq!(json_str("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_str("tab\there"), r#""tab\there""#);
    }

    #[test]
    fn empty_report_is_valid_json_shape() {
        let r = Report::default();
        let j = r.to_json();
        assert!(j.contains("\"violation_count\": 0"));
        assert!(j.contains("\"violations\": []"));
        assert!(j.ends_with("}\n"));
    }

    #[test]
    fn counts_group_by_rule() {
        let mut r = Report::default();
        for rule in ["panic", "panic", "float-eq"] {
            r.violations.push(Diagnostic {
                rule: rule.into(),
                path: "x.rs".into(),
                line: 1,
                col: 1,
                message: String::new(),
            });
        }
        let c = r.counts();
        assert_eq!(c.get("panic"), Some(&2));
        assert_eq!(c.get("float-eq"), Some(&1));
    }
}
