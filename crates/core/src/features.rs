//! Feature generation functions (Section 5.1).
//!
//! The i-th FGF matches pattern `P_i` against an image `I` and returns
//! the maximum normalized cross-correlation over all placements. The
//! per-image feature vector stacks all FGF outputs — "a vector that
//! consists of all output values of the FGFs on each image is used as the
//! input of the labeler". Matching uses the paper's pyramid method by
//! default; the exact scan exists for the ablation bench.

use crate::pattern::Pattern;
use crate::{CoreError, Result};
use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction, Stage};
use ig_imaging::ncc::{match_template, match_template_pyramid, PyramidMatchConfig};
use ig_imaging::resize::resize_bilinear;
use ig_imaging::GrayImage;
use ig_nn::Matrix;

/// Pixel variance below which a pattern is degenerate: NCC normalizes by
/// the pattern's standard deviation, so a (near-)constant pattern can
/// never produce a meaningful score.
const DEGENERATE_VARIANCE: f32 = 1e-10;

fn pixel_variance(img: &GrayImage) -> f32 {
    let px = img.pixels();
    if px.is_empty() {
        return 0.0;
    }
    let n = px.len() as f32;
    let mean = px.iter().sum::<f32>() / n;
    px.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / n
}

/// Which matcher the FGFs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchBackend {
    /// Exhaustive scan (exact; slow on large images).
    Exact,
    /// Coarse-to-fine pyramid search (the paper's choice).
    Pyramid,
}

/// A bank of FGFs over a fixed pattern set.
#[derive(Debug, Clone)]
pub struct FeatureGenerator {
    patterns: Vec<Pattern>,
    /// Per-pattern quarantine mask: `false` = degenerate (zero variance),
    /// its FGF always emits 0.0 without touching the matcher. Feature
    /// dimensionality stays equal to the pattern count either way.
    active: Vec<bool>,
    backend: MatchBackend,
    pyramid: PyramidMatchConfig,
    threads: usize,
}

impl FeatureGenerator {
    /// Build with the pyramid backend and hardware parallelism.
    pub fn new(patterns: Vec<Pattern>) -> Result<Self> {
        Self::new_with_health(patterns, None, &HealthReport::new())
    }

    /// [`FeatureGenerator::new`] with chaos-plan injection and health
    /// reporting. Patterns the plan marks degenerate are flattened to
    /// constant gray before detection runs; every quarantined pattern is
    /// recorded on `health`. A quarantined pattern keeps its feature
    /// column (constant 0.0) so feature dimensions never shift — which is
    /// also what a degenerate pattern produced before quarantining
    /// existed, since NCC on zero variance errors out into a 0.0 score.
    pub fn new_with_health(
        mut patterns: Vec<Pattern>,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Result<Self> {
        if patterns.is_empty() {
            return Err(CoreError::NoPatterns);
        }
        if let Some(plan) = plan {
            for (i, p) in patterns.iter_mut().enumerate() {
                if plan.degenerate_pattern(i) {
                    p.image.map_in_place(|_| 0.5);
                }
            }
        }
        let active: Vec<bool> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let ok = pixel_variance(&p.image) > DEGENERATE_VARIANCE;
                if !ok {
                    health.record(
                        Stage::Features,
                        FaultKind::DegeneratePattern,
                        RecoveryAction::QuarantinedPattern,
                        format!("pattern {i}: zero pixel variance, FGF pinned to 0.0"),
                    );
                }
                ok
            })
            .collect();
        Ok(Self {
            patterns,
            active,
            backend: MatchBackend::Pyramid,
            pyramid: PyramidMatchConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        })
    }

    /// Number of non-quarantined patterns.
    pub fn num_active(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Override the matching backend.
    pub fn with_backend(mut self, backend: MatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Override the worker-thread count (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of features (= number of patterns).
    pub fn num_features(&self) -> usize {
        self.patterns.len()
    }

    /// Borrow the pattern bank.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Feature vector of one image: max NCC score per pattern. Patterns
    /// larger than the image are shrunk to fit (keeping aspect) before
    /// matching, mirroring the paper's re-adjustment of pattern sizes.
    /// Quarantined patterns contribute a constant 0.0.
    pub fn features_for(&self, image: &GrayImage) -> Vec<f32> {
        self.patterns
            .iter()
            .zip(&self.active)
            .map(|(p, &active)| {
                if active {
                    self.match_one(image, &p.image).0
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// `features_for` with fault injection and per-value health events:
    /// matcher errors and non-finite scores are recorded (and sanitized
    /// to 0.0) instead of silently swallowed.
    fn features_for_health(
        &self,
        image: &GrayImage,
        row: usize,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Vec<f32> {
        self.patterns
            .iter()
            .zip(&self.active)
            .enumerate()
            .map(|(col, (p, &active))| {
                if !active {
                    return 0.0;
                }
                let (mut v, error) = self.match_one(image, &p.image);
                if let Some(msg) = error {
                    health.record(
                        Stage::Features,
                        FaultKind::MatchError,
                        RecoveryAction::SanitizedValue,
                        format!("image {row}, pattern {col}: {msg}"),
                    );
                }
                if let Some(plan) = plan {
                    v = plan.corrupt_feature(row, col, v);
                }
                if !v.is_finite() {
                    health.record(
                        Stage::Features,
                        FaultKind::NonFiniteFeature,
                        RecoveryAction::SanitizedValue,
                        format!("image {row}, pattern {col}: {v} replaced with 0.0"),
                    );
                    v = 0.0;
                }
                v
            })
            .collect()
    }

    fn match_one(&self, image: &GrayImage, pattern: &GrayImage) -> (f32, Option<String>) {
        let fitted;
        let pattern = if pattern.width() > image.width() || pattern.height() > image.height() {
            let sx = image.width() as f32 / pattern.width() as f32;
            let sy = image.height() as f32 / pattern.height() as f32;
            let s = sx.min(sy).min(1.0);
            let nw = ((pattern.width() as f32 * s) as usize).max(1);
            let nh = ((pattern.height() as f32 * s) as usize).max(1);
            match resize_bilinear(pattern, nw, nh) {
                Ok(img) => {
                    fitted = img;
                    &fitted
                }
                Err(e) => return (0.0, Some(format!("pattern resize failed: {e}"))),
            }
        } else {
            pattern
        };
        let result = match self.backend {
            MatchBackend::Exact => match_template(image, pattern),
            MatchBackend::Pyramid => match_template_pyramid(image, pattern, &self.pyramid),
        };
        match result {
            Ok(m) => (m.score, None),
            Err(e) => (0.0, Some(format!("template match failed: {e}"))),
        }
    }

    /// Feature matrix for a batch of images (rows = images), computed in
    /// parallel across images with scoped threads. A panicking worker no
    /// longer aborts the batch — its chunk is recomputed serially.
    pub fn feature_matrix(&self, images: &[&GrayImage]) -> Matrix {
        self.feature_matrix_with_health(images, None, &HealthReport::new())
    }

    /// [`FeatureGenerator::feature_matrix`] with fault injection and
    /// health reporting. Recovery ladder per chunk: a worker thread that
    /// panics (injected or real) is joined individually, the panic is
    /// contained, and its rows are recomputed serially on the calling
    /// thread, so one bad thread costs latency instead of the batch.
    pub fn feature_matrix_with_health(
        &self,
        images: &[&GrayImage],
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Matrix {
        let n = images.len();
        if n == 0 {
            return Matrix::zeros(0, self.num_features());
        }
        let threads = self.threads.min(n);
        if threads <= 1 {
            let rows: Vec<Vec<f32>> = images
                .iter()
                .enumerate()
                .map(|(r, img)| self.features_for_health(img, r, plan, health))
                .collect();
            return Matrix::from_rows(&rows);
        }
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); n];
        let chunk = n.div_ceil(threads);
        let mut failed_chunks: Vec<usize> = Vec::new();
        let scope_result = crossbeam::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (ci, (slot, img_chunk)) in
                rows.chunks_mut(chunk).zip(images.chunks(chunk)).enumerate()
            {
                let handle = scope.spawn(move |_| {
                    if plan.is_some_and(|p| p.worker_panic(ci)) {
                        // ig-lint: allow(panic) -- deliberate injected fault;
                        // the recovery ladder catches it and re-runs the chunk
                        panic!("injected fault: feature worker {ci} panicked");
                    }
                    for (i, (row, img)) in slot.iter_mut().zip(img_chunk).enumerate() {
                        *row = self.features_for_health(img, ci * chunk + i, plan, health);
                    }
                });
                handles.push((ci, handle));
            }
            // Join each worker individually: a panic surfaces as Err here
            // instead of tearing down the scope.
            for (ci, handle) in handles {
                if handle.join().is_err() {
                    failed_chunks.push(ci);
                }
            }
        });
        debug_assert!(scope_result.is_ok(), "all workers were joined in-scope");
        for ci in failed_chunks {
            health.record(
                Stage::Features,
                FaultKind::WorkerPanic,
                RecoveryAction::SerialRecompute,
                format!("feature worker chunk {ci} panicked; rows recomputed serially"),
            );
            let start = ci * chunk;
            let end = (start + chunk).min(n);
            for r in start..end {
                rows[r] = self.features_for_health(images[r], r, plan, health);
            }
        }
        Matrix::from_rows(&rows)
    }

    /// Per-image maximum over all features — the "did anything match at
    /// all" signal used by the Table 6 error analysis. An image with no
    /// features (empty pattern row) reports 0.0, not `-inf`.
    pub fn max_similarity(features: &Matrix, row: usize) -> f32 {
        let max = features
            .row(row)
            .iter()
            .fold(f32::NEG_INFINITY, |m, &v| m.max(v));
        if max.is_finite() {
            max
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSource;

    fn image_with_defect(at: (usize, usize)) -> GrayImage {
        let mut img = GrayImage::filled(64, 48, 0.7);
        let mut defect = GrayImage::filled(8, 8, 0.7);
        defect.fill_disk(3.5, 3.5, 3.0, 0.15);
        img.paste(&defect, at.0, at.1).unwrap();
        img
    }

    fn defect_pattern() -> Pattern {
        let mut p = GrayImage::filled(8, 8, 0.7);
        p.fill_disk(3.5, 3.5, 3.0, 0.15);
        Pattern::crowd(p)
    }

    #[test]
    fn empty_pattern_bank_rejected() {
        assert!(matches!(
            FeatureGenerator::new(vec![]),
            Err(CoreError::NoPatterns)
        ));
    }

    #[test]
    fn defective_image_scores_higher_than_clean() {
        let fg = FeatureGenerator::new(vec![defect_pattern()]).unwrap();
        let defective = image_with_defect((20, 20));
        let clean = GrayImage::filled(64, 48, 0.7);
        let f_def = fg.features_for(&defective)[0];
        let f_clean = fg.features_for(&clean)[0];
        assert!(
            f_def > f_clean + 0.01,
            "defective {f_def} vs clean {f_clean}"
        );
        assert!(f_def > 0.99, "planted pattern should match ~1.0: {f_def}");
    }

    #[test]
    fn feature_vector_length_matches_pattern_count() {
        let pats = vec![defect_pattern(), defect_pattern(), defect_pattern()];
        let fg = FeatureGenerator::new(pats).unwrap();
        let img = image_with_defect((5, 5));
        assert_eq!(fg.features_for(&img).len(), 3);
        assert_eq!(fg.num_features(), 3);
    }

    #[test]
    fn exact_and_pyramid_agree_on_planted_defect() {
        let pats = vec![defect_pattern()];
        let img = image_with_defect((33, 17));
        let exact = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_backend(MatchBackend::Exact)
            .features_for(&img)[0];
        let pyramid = FeatureGenerator::new(pats)
            .unwrap()
            .with_backend(MatchBackend::Pyramid)
            .features_for(&img)[0];
        assert!((exact - pyramid).abs() < 0.01, "{exact} vs {pyramid}");
    }

    #[test]
    fn oversized_pattern_is_shrunk_not_dropped() {
        // A smooth 100x100 pattern against a 32x24 image with the same
        // large-scale structure: the pattern must be shrunk to fit and
        // still correlate strongly (not error out or score 0).
        let texture = |x: usize, y: usize, scale: f32| {
            0.5 + 0.3 * ((x as f32 * scale).sin() * (y as f32 * scale).cos())
        };
        let big = Pattern::augmented(
            GrayImage::from_fn(100, 100, |x, y| texture(x, y, 0.07)),
            PatternSource::Gan,
        );
        let fg = FeatureGenerator::new(vec![big]).unwrap();
        // ~3.1x smaller image with the matching (downscaled) frequency.
        let img = GrayImage::from_fn(32, 24, |x, y| texture(x, y, 0.07 * 100.0 / 32.0));
        let f = fg.features_for(&img);
        // The aspect-preserving shrink (to 24x24 here) shifts the texture
        // frequency slightly, so expect a clear but imperfect correlation.
        assert!(f[0] > 0.3, "shrunk pattern should still match: {}", f[0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let pats = vec![defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..7).map(|i| image_with_defect((i * 5, 10))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let serial = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_threads(1)
            .feature_matrix(&refs);
        let parallel = FeatureGenerator::new(pats)
            .unwrap()
            .with_threads(4)
            .feature_matrix(&refs);
        assert_eq!(serial.shape(), parallel.shape());
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a, b, "parallel result differs");
        }
    }

    #[test]
    fn empty_image_batch() {
        let fg = FeatureGenerator::new(vec![defect_pattern()]).unwrap();
        let m = fg.feature_matrix(&[]);
        assert_eq!(m.shape(), (0, 1));
    }

    #[test]
    fn max_similarity_extracts_row_max() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9, 0.4], vec![0.2, 0.1, 0.3]]);
        assert_eq!(FeatureGenerator::max_similarity(&m, 0), 0.9);
        assert_eq!(FeatureGenerator::max_similarity(&m, 1), 0.3);
    }

    #[test]
    fn max_similarity_empty_row_is_zero() {
        // Regression: an empty feature row used to report -inf, which
        // poisoned every downstream threshold comparison.
        let m = Matrix::zeros(2, 0);
        assert_eq!(FeatureGenerator::max_similarity(&m, 0), 0.0);
        assert_eq!(FeatureGenerator::max_similarity(&m, 1), 0.0);
    }

    #[test]
    fn degenerate_pattern_is_quarantined() {
        use ig_faults::{FaultKind, HealthReport, RecoveryAction};
        let health = HealthReport::new();
        let flat = Pattern::crowd(GrayImage::filled(8, 8, 0.5));
        let fg =
            FeatureGenerator::new_with_health(vec![defect_pattern(), flat], None, &health).unwrap();
        assert_eq!(fg.num_features(), 2, "feature dim must not shift");
        assert_eq!(fg.num_active(), 1);
        assert_eq!(health.count(FaultKind::DegeneratePattern), 1);
        assert_eq!(health.count_action(RecoveryAction::QuarantinedPattern), 1);
        let f = fg.features_for(&image_with_defect((10, 10)));
        assert_eq!(f[1], 0.0, "quarantined FGF pinned to 0.0");
        assert!(f[0] > 0.9, "live FGF unaffected: {}", f[0]);
    }

    #[test]
    fn worker_panic_recovers_to_serial_result() {
        use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction};
        let pats = vec![defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..8).map(|i| image_with_defect((i * 4, 8))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let serial = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_threads(1)
            .feature_matrix(&refs);
        let plan = FaultPlan {
            seed: 5,
            worker_panic_rate: 1.0, // every worker chunk panics
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let parallel = FeatureGenerator::new(pats)
            .unwrap()
            .with_threads(4)
            .feature_matrix_with_health(&refs, Some(&plan), &health);
        assert_eq!(serial.shape(), parallel.shape());
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a, b, "recovered result differs from serial");
        }
        assert!(health.count(FaultKind::WorkerPanic) >= 1);
        assert!(health.count_action(RecoveryAction::SerialRecompute) >= 1);
    }

    #[test]
    fn injected_non_finite_features_are_sanitized() {
        use ig_faults::{FaultKind, FaultPlan, HealthReport};
        let pats = vec![defect_pattern(), defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..12).map(|i| image_with_defect((i * 3, 6))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let plan = FaultPlan {
            seed: 9,
            nan_feature_rate: 0.2,
            inf_feature_rate: 0.1,
            ..FaultPlan::default()
        };
        let health = HealthReport::new();
        let m = FeatureGenerator::new(pats)
            .unwrap()
            .with_threads(2)
            .feature_matrix_with_health(&refs, Some(&plan), &health);
        assert!(m.as_slice().iter().all(|v| v.is_finite()));
        assert!(health.count(FaultKind::NonFiniteFeature) >= 1);
    }

    #[test]
    fn empty_plan_matches_no_plan() {
        use ig_faults::{FaultPlan, HealthReport};
        let pats = vec![defect_pattern()];
        let images: Vec<GrayImage> = (0..5).map(|i| image_with_defect((i * 6, 4))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let fg = FeatureGenerator::new(pats).unwrap().with_threads(2);
        let plain = fg.feature_matrix(&refs);
        let health = HealthReport::new();
        let with_empty_plan =
            fg.feature_matrix_with_health(&refs, Some(&FaultPlan::none(3)), &health);
        assert_eq!(plain.as_slice(), with_empty_plan.as_slice());
        assert!(health.is_clean());
    }
}
