//! Ablation bench: feature generation (the FGF bank) serial vs parallel,
//! and throughput vs pattern count — the pipeline's hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ig_bench::{defect_pattern, image_batch};
use ig_core::{FeatureGenerator, Pattern, PatternSource};
use ig_imaging::GrayImage;

fn make_generator(num_patterns: usize) -> FeatureGenerator {
    let patterns: Vec<GrayImage> = (0..num_patterns)
        .map(|i| defect_pattern(10 + (i % 4), i as u64))
        .collect();
    FeatureGenerator::new(Pattern::wrap_all(patterns, PatternSource::Crowd))
        .expect("nonempty pattern bank")
}

fn bench_pattern_count(c: &mut Criterion) {
    let images = image_batch(8, 160, 40, 3);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let mut group = c.benchmark_group("fgf_pattern_count");
    for num_patterns in [4usize, 16, 64] {
        let fg = make_generator(num_patterns).with_threads(1);
        group.throughput(Throughput::Elements((refs.len() * num_patterns) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(num_patterns),
            &num_patterns,
            |b, _| b.iter(|| fg.feature_matrix(&refs)),
        );
    }
    group.finish();
}

fn bench_parallelism(c: &mut Criterion) {
    let images = image_batch(16, 160, 40, 5);
    let refs: Vec<&GrayImage> = images.iter().collect();
    let mut group = c.benchmark_group("fgf_threads");
    for threads in [1usize, 2, 4] {
        let fg = make_generator(16).with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, _| {
            b.iter(|| fg.feature_matrix(&refs))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pattern_count, bench_parallelism);
criterion_main!(benches);
