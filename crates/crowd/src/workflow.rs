//! The end-to-end crowdsourcing workflow (Figure 4) and its Table 3
//! ablation variants.

use crate::combine::{combine_boxes, CombineStrategy};
use crate::review::PeerReviewModel;
use crate::worker::WorkerModel;
use ig_imaging::{BBox, GrayImage};
use ig_synth::LabeledImage;
use rand::Rng;

/// Workflow configuration. The Table 3 ablations correspond to:
///
/// * full workflow: `combine = Some(Average)`, `peer_review = Some(..)`,
/// * "No peer review": `combine = Some(Average)`, `peer_review = None`
///   (outliers pass straight through),
/// * "No avg. (±std)": `combine = None` — each worker's raw boxes become
///   patterns directly; the experiment harness runs this per worker and
///   reports mean ± std across them.
#[derive(Debug, Clone)]
pub struct CrowdWorkflow {
    /// The simulated crew; each worker annotates every dev image.
    pub workers: Vec<WorkerModel>,
    /// Combination strategy for overlapping boxes; `None` disables
    /// grouping entirely (every raw box becomes a candidate pattern).
    pub combine: Option<CombineStrategy>,
    /// Peer-review panel for outlier boxes; `None` keeps all outliers.
    pub peer_review: Option<PeerReviewModel>,
    /// Margin (pixels) added around each final box when cropping patterns,
    /// giving the matcher a little context.
    pub crop_margin: f32,
    /// Discard final patterns smaller than this many pixels on a side.
    pub min_pattern_side: usize,
}

impl CrowdWorkflow {
    /// The paper's full workflow with the default crew.
    pub fn full() -> Self {
        Self {
            workers: WorkerModel::default_crew(),
            combine: Some(CombineStrategy::Average),
            peer_review: Some(PeerReviewModel::competent()),
            crop_margin: 2.0,
            min_pattern_side: 3,
        }
    }

    /// Table 3 "No peer review" variant.
    pub fn no_peer_review() -> Self {
        Self {
            peer_review: None,
            ..Self::full()
        }
    }

    /// Table 3 "No avg." variant for a single worker (run per worker and
    /// aggregate mean ± std externally).
    pub fn single_worker(worker: WorkerModel) -> Self {
        Self {
            workers: vec![worker],
            combine: None,
            peer_review: None,
            ..Self::full()
        }
    }

    /// Run the workflow over the development images.
    pub fn run(&self, dev_images: &[&LabeledImage], rng: &mut impl Rng) -> WorkflowOutput {
        let mut patterns = Vec::new();
        let mut final_boxes_per_image = Vec::with_capacity(dev_images.len());
        let mut raw_box_count = 0usize;
        let mut outlier_count = 0usize;
        for image in dev_images {
            // 1. Annotation.
            let mut raw: Vec<BBox> = Vec::new();
            for worker in &self.workers {
                raw.extend(worker.annotate(image, rng));
            }
            raw_box_count += raw.len();

            // 2. Combination (or pass-through).
            let (mut final_boxes, outliers) = match self.combine {
                Some(strategy) => {
                    let out = combine_boxes(&raw, strategy);
                    (out.combined, out.outliers)
                }
                None => (raw, Vec::new()),
            };
            outlier_count += outliers.len();

            // 3. Peer review of outliers.
            match (&self.peer_review, outliers) {
                (Some(panel), outliers) => {
                    final_boxes.extend(panel.review_all(
                        &outliers,
                        &image.defect_boxes,
                        rng,
                    ));
                }
                (None, outliers) => final_boxes.extend(outliers),
            }

            // 4. Crop patterns.
            for bbox in &final_boxes {
                if let Some(crop) = crop_pattern(&image.image, bbox, self.crop_margin) {
                    if crop.width() >= self.min_pattern_side
                        && crop.height() >= self.min_pattern_side
                    {
                        patterns.push(crop);
                    }
                }
            }
            final_boxes_per_image.push(final_boxes);
        }
        WorkflowOutput {
            patterns,
            final_boxes_per_image,
            raw_box_count,
            outlier_count,
        }
    }
}

/// Crop the image region under `bbox` inflated by `margin`.
fn crop_pattern(image: &GrayImage, bbox: &BBox, margin: f32) -> Option<GrayImage> {
    image.crop_bbox(&bbox.inflated(margin))
}

/// Everything the workflow produced.
#[derive(Debug, Clone)]
pub struct WorkflowOutput {
    /// Final pattern crops, ready for augmentation / feature generation.
    pub patterns: Vec<GrayImage>,
    /// Final boxes per input image (parallel to the input slice).
    pub final_boxes_per_image: Vec<Vec<BBox>>,
    /// Total raw boxes drawn by all workers.
    pub raw_box_count: usize,
    /// Boxes that entered the peer-review queue.
    pub outlier_count: usize,
}

impl WorkflowOutput {
    /// Recall of the final boxes against gold: fraction of gold defects
    /// covered by at least one final box (IoU > `iou_threshold`).
    pub fn gold_recall(&self, dev_images: &[&LabeledImage], iou_threshold: f32) -> f64 {
        let mut covered = 0usize;
        let mut total = 0usize;
        for (image, boxes) in dev_images.iter().zip(&self.final_boxes_per_image) {
            for gold in &image.defect_boxes {
                total += 1;
                if boxes.iter().any(|b| b.iou(gold) > iou_threshold) {
                    covered += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            covered as f64 / total as f64
        }
    }

    /// Precision of the final boxes: fraction overlapping some gold box.
    pub fn gold_precision(&self, dev_images: &[&LabeledImage], iou_threshold: f32) -> f64 {
        let mut good = 0usize;
        let mut total = 0usize;
        for (image, boxes) in dev_images.iter().zip(&self.final_boxes_per_image) {
            for b in boxes {
                total += 1;
                if image.defect_boxes.iter().any(|g| g.iou(b) > iou_threshold) {
                    good += 1;
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            good as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ig_synth::spec::{DatasetKind, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn dev_images(seed: u64) -> (ig_synth::Dataset, Vec<usize>) {
        let d = ig_synth::generate(&DatasetSpec {
            n: 30,
            n_defective: 15,
            noisy_fraction: 0.0,
            difficult_fraction: 0.0,
            ..DatasetSpec::quick(DatasetKind::ProductScratch, seed)
        });
        let idx: Vec<usize> = (0..d.len()).collect();
        (d, idx)
    }

    #[test]
    fn full_workflow_produces_patterns() {
        let (d, idx) = dev_images(40);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let out = CrowdWorkflow::full().run(&refs, &mut rng);
        assert!(!out.patterns.is_empty());
        assert!(out.raw_box_count >= out.patterns.len());
        for p in &out.patterns {
            assert!(p.width() >= 3 && p.height() >= 3);
        }
    }

    #[test]
    fn full_workflow_beats_no_review_on_precision() {
        let (d, idx) = dev_images(41);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        // Use sloppier workers to make spurious boxes common.
        let mut sloppy_crew = CrowdWorkflow::full();
        sloppy_crew.workers = vec![
            WorkerModel::sloppy(),
            WorkerModel::sloppy(),
            WorkerModel::typical(),
        ];
        let mut no_review = sloppy_crew.clone();
        no_review.peer_review = None;

        let mut p_full = 0.0;
        let mut p_none = 0.0;
        for trial in 0..5 {
            let mut rng = StdRng::seed_from_u64(100 + trial);
            p_full += sloppy_crew.run(&refs, &mut rng).gold_precision(&refs, 0.1);
            let mut rng = StdRng::seed_from_u64(100 + trial);
            p_none += no_review.run(&refs, &mut rng).gold_precision(&refs, 0.1);
        }
        assert!(
            p_full > p_none,
            "peer review should filter spurious outliers: {p_full} vs {p_none}"
        );
    }

    #[test]
    fn recall_is_high_with_default_crew() {
        let (d, idx) = dev_images(42);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let mut rng = StdRng::seed_from_u64(1);
        let out = CrowdWorkflow::full().run(&refs, &mut rng);
        let recall = out.gold_recall(&refs, 0.1);
        assert!(recall > 0.6, "recall {recall}");
    }

    #[test]
    fn single_worker_variant_uses_raw_boxes() {
        let (d, idx) = dev_images(43);
        let refs: Vec<&LabeledImage> = idx.iter().map(|&i| &d.images[i]).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let out = CrowdWorkflow::single_worker(WorkerModel::careful()).run(&refs, &mut rng);
        assert_eq!(out.outlier_count, 0, "no grouping → no outlier queue");
        // Raw boxes map 1:1 to final boxes (minus sub-minimum crops).
        let finals: usize = out.final_boxes_per_image.iter().map(Vec::len).sum();
        assert_eq!(finals, out.raw_box_count);
    }

    #[test]
    fn empty_dev_set_yields_empty_output() {
        let mut rng = StdRng::seed_from_u64(3);
        let out = CrowdWorkflow::full().run(&[], &mut rng);
        assert!(out.patterns.is_empty());
        assert_eq!(out.gold_recall(&[], 0.1), 1.0);
    }

    #[test]
    fn combined_boxes_have_averaged_coordinates() {
        // With three careful workers on the same defect, the final box
        // should be close to the gold box.
        let (d, _) = dev_images(44);
        let img = d
            .images
            .iter()
            .find(|i| i.label == 1 && i.defect_boxes.len() == 1)
            .expect("single-defect image");
        let refs = vec![img];
        let workflow = CrowdWorkflow {
            workers: vec![WorkerModel::careful(); 3],
            ..CrowdWorkflow::full()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let out = workflow.run(&refs, &mut rng);
        let gold = img.defect_boxes[0];
        let best_iou = out.final_boxes_per_image[0]
            .iter()
            .map(|b| b.iou(&gold))
            .fold(0.0f32, f32::max);
        assert!(best_iou > 0.5, "best IoU {best_iou}");
    }
}
