//! Feature generation functions (Section 5.1).
//!
//! The i-th FGF matches pattern `P_i` against an image `I` and returns
//! the maximum normalized cross-correlation over all placements. The
//! per-image feature vector stacks all FGF outputs — "a vector that
//! consists of all output values of the FGFs on each image is used as the
//! input of the labeler". Matching uses the paper's pyramid method by
//! default; the exact scan exists for the ablation bench.

use crate::pattern::Pattern;
use crate::{CoreError, Result};
use ig_imaging::ncc::{match_template, match_template_pyramid, PyramidMatchConfig};
use ig_imaging::resize::resize_bilinear;
use ig_imaging::GrayImage;
use ig_nn::Matrix;

/// Which matcher the FGFs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchBackend {
    /// Exhaustive scan (exact; slow on large images).
    Exact,
    /// Coarse-to-fine pyramid search (the paper's choice).
    Pyramid,
}

/// A bank of FGFs over a fixed pattern set.
#[derive(Debug, Clone)]
pub struct FeatureGenerator {
    patterns: Vec<Pattern>,
    backend: MatchBackend,
    pyramid: PyramidMatchConfig,
    threads: usize,
}

impl FeatureGenerator {
    /// Build with the pyramid backend and hardware parallelism.
    pub fn new(patterns: Vec<Pattern>) -> Result<Self> {
        if patterns.is_empty() {
            return Err(CoreError::NoPatterns);
        }
        Ok(Self {
            patterns,
            backend: MatchBackend::Pyramid,
            pyramid: PyramidMatchConfig::default(),
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        })
    }

    /// Override the matching backend.
    pub fn with_backend(mut self, backend: MatchBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Override the worker-thread count (1 = serial).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of features (= number of patterns).
    pub fn num_features(&self) -> usize {
        self.patterns.len()
    }

    /// Borrow the pattern bank.
    pub fn patterns(&self) -> &[Pattern] {
        &self.patterns
    }

    /// Feature vector of one image: max NCC score per pattern. Patterns
    /// larger than the image are shrunk to fit (keeping aspect) before
    /// matching, mirroring the paper's re-adjustment of pattern sizes.
    pub fn features_for(&self, image: &GrayImage) -> Vec<f32> {
        self.patterns
            .iter()
            .map(|p| self.match_one(image, &p.image))
            .collect()
    }

    fn match_one(&self, image: &GrayImage, pattern: &GrayImage) -> f32 {
        let fitted;
        let pattern = if pattern.width() > image.width() || pattern.height() > image.height() {
            let sx = image.width() as f32 / pattern.width() as f32;
            let sy = image.height() as f32 / pattern.height() as f32;
            let s = sx.min(sy).min(1.0);
            let nw = ((pattern.width() as f32 * s) as usize).max(1);
            let nh = ((pattern.height() as f32 * s) as usize).max(1);
            match resize_bilinear(pattern, nw, nh) {
                Ok(img) => {
                    fitted = img;
                    &fitted
                }
                Err(_) => return 0.0,
            }
        } else {
            pattern
        };
        let result = match self.backend {
            MatchBackend::Exact => match_template(image, pattern),
            MatchBackend::Pyramid => match_template_pyramid(image, pattern, &self.pyramid),
        };
        result.map(|m| m.score).unwrap_or(0.0)
    }

    /// Feature matrix for a batch of images (rows = images), computed in
    /// parallel across images with scoped threads.
    pub fn feature_matrix(&self, images: &[&GrayImage]) -> Matrix {
        let n = images.len();
        if n == 0 {
            return Matrix::zeros(0, self.num_features());
        }
        let threads = self.threads.min(n);
        if threads <= 1 {
            let rows: Vec<Vec<f32>> =
                images.iter().map(|img| self.features_for(img)).collect();
            return Matrix::from_rows(&rows);
        }
        let mut rows: Vec<Vec<f32>> = vec![Vec::new(); n];
        let chunk = n.div_ceil(threads);
        crossbeam::thread::scope(|scope| {
            for (slot, img_chunk) in rows.chunks_mut(chunk).zip(images.chunks(chunk)) {
                scope.spawn(move |_| {
                    for (row, img) in slot.iter_mut().zip(img_chunk) {
                        *row = self.features_for(img);
                    }
                });
            }
        })
        .expect("feature worker panicked");
        Matrix::from_rows(&rows)
    }

    /// Per-image maximum over all features — the "did anything match at
    /// all" signal used by the Table 6 error analysis.
    pub fn max_similarity(features: &Matrix, row: usize) -> f32 {
        features
            .row(row)
            .iter()
            .fold(f32::NEG_INFINITY, |m, &v| m.max(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::PatternSource;

    fn image_with_defect(at: (usize, usize)) -> GrayImage {
        let mut img = GrayImage::filled(64, 48, 0.7);
        let mut defect = GrayImage::filled(8, 8, 0.7);
        defect.fill_disk(3.5, 3.5, 3.0, 0.15);
        img.paste(&defect, at.0, at.1).unwrap();
        img
    }

    fn defect_pattern() -> Pattern {
        let mut p = GrayImage::filled(8, 8, 0.7);
        p.fill_disk(3.5, 3.5, 3.0, 0.15);
        Pattern::crowd(p)
    }

    #[test]
    fn empty_pattern_bank_rejected() {
        assert!(matches!(
            FeatureGenerator::new(vec![]),
            Err(CoreError::NoPatterns)
        ));
    }

    #[test]
    fn defective_image_scores_higher_than_clean() {
        let fg = FeatureGenerator::new(vec![defect_pattern()]).unwrap();
        let defective = image_with_defect((20, 20));
        let clean = GrayImage::filled(64, 48, 0.7);
        let f_def = fg.features_for(&defective)[0];
        let f_clean = fg.features_for(&clean)[0];
        assert!(
            f_def > f_clean + 0.01,
            "defective {f_def} vs clean {f_clean}"
        );
        assert!(f_def > 0.99, "planted pattern should match ~1.0: {f_def}");
    }

    #[test]
    fn feature_vector_length_matches_pattern_count() {
        let pats = vec![defect_pattern(), defect_pattern(), defect_pattern()];
        let fg = FeatureGenerator::new(pats).unwrap();
        let img = image_with_defect((5, 5));
        assert_eq!(fg.features_for(&img).len(), 3);
        assert_eq!(fg.num_features(), 3);
    }

    #[test]
    fn exact_and_pyramid_agree_on_planted_defect() {
        let pats = vec![defect_pattern()];
        let img = image_with_defect((33, 17));
        let exact = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_backend(MatchBackend::Exact)
            .features_for(&img)[0];
        let pyramid = FeatureGenerator::new(pats)
            .unwrap()
            .with_backend(MatchBackend::Pyramid)
            .features_for(&img)[0];
        assert!((exact - pyramid).abs() < 0.01, "{exact} vs {pyramid}");
    }

    #[test]
    fn oversized_pattern_is_shrunk_not_dropped() {
        // A smooth 100x100 pattern against a 32x24 image with the same
        // large-scale structure: the pattern must be shrunk to fit and
        // still correlate strongly (not error out or score 0).
        let texture = |x: usize, y: usize, scale: f32| {
            0.5 + 0.3 * ((x as f32 * scale).sin() * (y as f32 * scale).cos())
        };
        let big = Pattern::augmented(
            GrayImage::from_fn(100, 100, |x, y| texture(x, y, 0.07)),
            PatternSource::Gan,
        );
        let fg = FeatureGenerator::new(vec![big]).unwrap();
        // ~3.1x smaller image with the matching (downscaled) frequency.
        let img = GrayImage::from_fn(32, 24, |x, y| texture(x, y, 0.07 * 100.0 / 32.0));
        let f = fg.features_for(&img);
        // The aspect-preserving shrink (to 24x24 here) shifts the texture
        // frequency slightly, so expect a clear but imperfect correlation.
        assert!(f[0] > 0.3, "shrunk pattern should still match: {}", f[0]);
    }

    #[test]
    fn parallel_matches_serial() {
        let pats = vec![defect_pattern(), defect_pattern()];
        let images: Vec<GrayImage> = (0..7).map(|i| image_with_defect((i * 5, 10))).collect();
        let refs: Vec<&GrayImage> = images.iter().collect();
        let serial = FeatureGenerator::new(pats.clone())
            .unwrap()
            .with_threads(1)
            .feature_matrix(&refs);
        let parallel = FeatureGenerator::new(pats)
            .unwrap()
            .with_threads(4)
            .feature_matrix(&refs);
        assert_eq!(serial.shape(), parallel.shape());
        for (a, b) in serial.as_slice().iter().zip(parallel.as_slice()) {
            assert_eq!(a, b, "parallel result differs");
        }
    }

    #[test]
    fn empty_image_batch() {
        let fg = FeatureGenerator::new(vec![defect_pattern()]).unwrap();
        let m = fg.feature_matrix(&[]);
        assert_eq!(m.shape(), (0, 1));
    }

    #[test]
    fn max_similarity_extracts_row_max() {
        let m = Matrix::from_rows(&[vec![0.1, 0.9, 0.4], vec![0.2, 0.1, 0.3]]);
        assert_eq!(FeatureGenerator::max_similarity(&m, 0), 0.9);
        assert_eq!(FeatureGenerator::max_similarity(&m, 1), 0.3);
    }
}
