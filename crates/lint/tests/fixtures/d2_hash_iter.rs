//! Fixture: D2 hash-iteration shapes. Line numbers are asserted — do not
//! reflow.

use std::collections::{BTreeMap, HashMap, HashSet};

fn typed_binding(scores: &HashMap<u32, f32>) -> f32 {
    scores.values().sum() // line 7: .values() on hash-bound param
}

fn let_binding() -> Vec<u32> {
    let mut seen = HashSet::new();
    seen.insert(3u32);
    let mut out = Vec::new();
    for v in &seen {
        // (violation on line 14: for-in over hash-bound local)
        out.push(*v);
    }
    out
}

fn keyed_reads_are_fine(scores: &HashMap<u32, f32>) -> Option<f32> {
    scores.get(&7).copied() // no violation: not iteration
}

fn btree_is_fine(ordered: &BTreeMap<u32, f32>) -> f32 {
    ordered.values().sum() // no violation: ordered collection
}

fn annotated(scores: &HashMap<u32, f32>) -> f32 {
    // ig-lint: allow(hash-iter) -- fixture: sum is order-independent
    scores.values().sum() // line 31: suppressed by line 30
}
