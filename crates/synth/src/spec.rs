//! Dataset generation parameters with paper-scale and test-scale presets.

use serde::{Deserialize, Serialize};

/// Which simulacrum to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetKind {
    /// Kolektor surface-defect stand-in (cracks).
    Ksdd,
    /// Product strip with scratches.
    ProductScratch,
    /// Product strip with bubbles.
    ProductBubble,
    /// Product strip with stampings.
    ProductStamping,
    /// NEU six-class steel-surface textures.
    Neu,
}

impl DatasetKind {
    /// All five dataset kinds in Table 1 order.
    pub fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::Ksdd,
            DatasetKind::ProductScratch,
            DatasetKind::ProductBubble,
            DatasetKind::ProductStamping,
            DatasetKind::Neu,
        ]
    }

    /// The paper's Table 1 display name.
    pub fn display_name(&self) -> &'static str {
        match self {
            DatasetKind::Ksdd => "KSDD",
            DatasetKind::ProductScratch => "Product (scratch)",
            DatasetKind::ProductBubble => "Product (bubble)",
            DatasetKind::ProductStamping => "Product (stamping)",
            DatasetKind::Neu => "NEU",
        }
    }
}

/// Generation parameters.
///
/// The paper's images are large (e.g. Product stamping is 161 x 5278); the
/// presets here shrink resolution while keeping the aspect flavour,
/// defect-to-image size ratio and class imbalance, which are what the
/// pipeline's behaviour depends on.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DatasetSpec {
    /// Which dataset to generate.
    pub kind: DatasetKind,
    /// Total images (`N` in Table 1). For NEU this is the grand total over
    /// all six classes.
    pub n: usize,
    /// Number of defective images (`N_D`). Ignored for NEU (all images are
    /// defective).
    pub n_defective: usize,
    /// Image width.
    pub width: usize,
    /// Image height.
    pub height: usize,
    /// RNG seed; the same spec always generates the same dataset.
    pub seed: u64,
    /// Fraction of images corrupted with acquisition noise.
    pub noisy_fraction: f64,
    /// Fraction of defects drawn at near-invisible contrast.
    pub difficult_fraction: f64,
}

impl DatasetSpec {
    /// Paper-shaped preset: Table 1's `N`/`N_D` with reduced resolution.
    pub fn paper(kind: DatasetKind, seed: u64) -> Self {
        let (n, n_defective, width, height) = match kind {
            // KSDD: 500 x 1257, N=399 (52). Scaled ~1/4.
            DatasetKind::Ksdd => (399, 52, 125, 314),
            // Product scratch: 162 x 2702, N=1673 (727). Scaled, rotated to
            // landscape strips.
            DatasetKind::ProductScratch => (1673, 727, 338, 40),
            // Product bubble: 77 x 1389, N=1048 (102).
            DatasetKind::ProductBubble => (1048, 102, 347, 38),
            // Product stamping: 161 x 5278, N=1094 (148).
            DatasetKind::ProductStamping => (1094, 148, 330, 40),
            // NEU: 200 x 200, 300 per defect x 6.
            DatasetKind::Neu => (1800, 1800, 64, 64),
        };
        Self {
            kind,
            n,
            n_defective,
            width,
            height,
            seed,
            noisy_fraction: 0.08,
            difficult_fraction: 0.06,
        }
    }

    /// Small preset for unit tests and examples.
    pub fn quick(kind: DatasetKind, seed: u64) -> Self {
        let (n, n_defective, width, height) = match kind {
            DatasetKind::Ksdd => (40, 10, 64, 120),
            DatasetKind::ProductScratch => (40, 16, 160, 32),
            DatasetKind::ProductBubble => (40, 8, 160, 32),
            DatasetKind::ProductStamping => (40, 10, 160, 32),
            DatasetKind::Neu => (48, 48, 48, 48),
        };
        Self {
            kind,
            n,
            n_defective,
            width,
            height,
            seed,
            noisy_fraction: 0.1,
            difficult_fraction: 0.1,
        }
    }

    /// Medium preset used by the experiment harness: paper class ratios at
    /// reduced `N` so a full Figure 9 sweep runs in CPU-minutes.
    pub fn medium(kind: DatasetKind, seed: u64) -> Self {
        let paper = Self::paper(kind, seed);
        let shrink = |v: usize, num: usize, den: usize| (v * num).div_ceil(den).max(4);
        let (n, n_defective) = match kind {
            // Keep each dataset's defect ratio; cap N for runtime.
            DatasetKind::Ksdd => (200, 26),
            DatasetKind::ProductScratch => (shrink(1673, 1, 6), shrink(727, 1, 6)),
            DatasetKind::ProductBubble => (shrink(1048, 1, 4), shrink(102, 1, 4)),
            DatasetKind::ProductStamping => (shrink(1094, 1, 4), shrink(148, 1, 4)),
            DatasetKind::Neu => (600, 600),
        };
        Self {
            n,
            n_defective,
            ..paper
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_preset_matches_table1_counts() {
        let s = DatasetSpec::paper(DatasetKind::Ksdd, 0);
        assert_eq!((s.n, s.n_defective), (399, 52));
        let s = DatasetSpec::paper(DatasetKind::ProductScratch, 0);
        assert_eq!((s.n, s.n_defective), (1673, 727));
        let s = DatasetSpec::paper(DatasetKind::ProductBubble, 0);
        assert_eq!((s.n, s.n_defective), (1048, 102));
        let s = DatasetSpec::paper(DatasetKind::ProductStamping, 0);
        assert_eq!((s.n, s.n_defective), (1094, 148));
        let s = DatasetSpec::paper(DatasetKind::Neu, 0);
        assert_eq!(s.n, 1800);
    }

    #[test]
    fn quick_preset_is_small() {
        for kind in DatasetKind::all() {
            let s = DatasetSpec::quick(kind, 0);
            assert!(s.n <= 64);
            assert!(s.width * s.height <= 64 * 160);
        }
    }

    #[test]
    fn medium_preserves_imbalance_direction() {
        let bubble = DatasetSpec::medium(DatasetKind::ProductBubble, 0);
        let scratch = DatasetSpec::medium(DatasetKind::ProductScratch, 0);
        let bubble_ratio = bubble.n_defective as f64 / bubble.n as f64;
        let scratch_ratio = scratch.n_defective as f64 / scratch.n as f64;
        assert!(bubble_ratio < 0.15, "bubble stays imbalanced");
        assert!(scratch_ratio > 0.35, "scratch stays balanced-ish");
    }

    #[test]
    fn display_names_match_paper() {
        assert_eq!(DatasetKind::Ksdd.display_name(), "KSDD");
        assert_eq!(
            DatasetKind::ProductBubble.display_name(),
            "Product (bubble)"
        );
    }
}
