//! # ig-crowd
//!
//! Simulation of Inspector Gadget's crowdsourcing workflow (Section 3,
//! Figure 4). The paper employs human crowdworkers to draw bounding boxes
//! around defects; here, stochastic [`worker::WorkerModel`]s perturb the
//! generator's gold boxes — jitter, size bias, misses, spurious boxes —
//! which is exactly the quality-control problem the workflow's machinery
//! (overlap grouping → combination → peer review) exists to solve, and the
//! thing Table 3 ablates.
//!
//! The workflow steps:
//!
//! 1. every worker annotates every development image ([`worker`]),
//! 2. overlapping boxes across workers are grouped and **combined by
//!    coordinate averaging** (union/intersection exist for the ablation;
//!    the paper found averaging best) ([`combine`]),
//! 3. the remaining outlier boxes go through **peer review**, which keeps
//!    real defects and discards spurious ones with worker-grade accuracy
//!    ([`review`]),
//! 4. surviving boxes are cropped into **patterns** ([`workflow`]).
//!
//! [`devset`] implements the Section 3 sampling rule: annotate randomly
//! chosen images until enough defective ones have been seen.

#![warn(missing_docs)]

pub mod combine;
pub mod devset;
pub mod review;
pub mod worker;
pub mod workflow;

pub use combine::CombineStrategy;
pub use devset::sample_dev_set;
pub use review::PeerReviewModel;
pub use worker::WorkerModel;
pub use workflow::{CrowdWorkflow, WorkflowOutput};
