//! Crash-safe on-disk tier of the artifact store.
//!
//! A [`DiskStore`] persists encoded stage outputs under a root directory
//! (by convention `results/store/`), one file per artifact at
//! `<root>/<stage-id>/<fingerprint>.art`. The layout is content-addressed
//! by the same `(stage id, fingerprint, seed, plan)` key the in-memory
//! [`crate::ArtifactStore`] uses, so a disk hit is only possible when
//! replaying the exact computation that wrote the file.
//!
//! Durability protocol, in order:
//!
//! 1. writes go to a pid-tagged temp file in the same directory,
//! 2. the temp file is flushed with `sync_all` (data reaches the medium
//!    before the name does),
//! 3. the temp file is atomically renamed onto the final name,
//! 4. the parent directory is fsynced so the rename itself survives a
//!    crash.
//!
//! A crash at any point leaves either the old state or the new state,
//! never a half-written artifact under the final name — and leftover temp
//! files from dead writers are swept on [`DiskStore::open`].
//!
//! Every load re-verifies the full header (magic, version, stage id, key
//! fingerprint) and a 128-bit payload checksum. Anything that fails —
//! torn file, flipped bit, key mismatch — is moved into the
//! `_quarantine/` subdirectory, recorded in the [`HealthReport`] as an
//! [`FaultKind::ArtifactCorruption`], and reported as a miss so the
//! caller transparently recomputes. A corrupt artifact is therefore
//! *evidence*, never served.
//!
//! Cross-process sharing uses advisory pid lock files (`<name>.lock`):
//! writers skip an artifact another live process is writing, and locks
//! whose owning pid is dead are broken and recorded as
//! [`FaultKind::StaleLock`]. Because the store is content-addressed, two
//! writers racing on the same key would write identical bytes, so lock
//! loss is a wasted write, never corruption.
//!
//! On top of the write-behind lock, [`DiskStore::begin_flight`] extends
//! the same lock file into a *single-flight* claim taken **before** an
//! expensive stage executes: the first process to create the lock becomes
//! the producer ([`Flight::Producer`]); any other process asking for the
//! same key sleeps in short polls — counted as `flight_waits` — until the
//! producer publishes and unlocks, then reads the verified artifact back
//! ([`Flight::Ready`]) instead of recomputing. A producer that dies
//! mid-flight leaves a dead-pid lock, which the next claimant breaks via
//! the ordinary stale-lock ladder and inherits the producer role — so two
//! concurrent sweeps over one store root warm-start from each other and
//! every artifact is computed by exactly one live process.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ig_faults::{FaultKind, FaultPlan, HealthReport, RecoveryAction, Stage};

use crate::codec::{Dec, Enc};
use crate::fingerprint::{Fingerprint, FingerprintHasher};

/// First 8 bytes of every artifact file ("IGSTORE1" as a big-endian word).
const MAGIC: u64 = 0x4947_5354_4f52_4531;
/// On-disk format version; bumped on any layout change so older readers
/// quarantine rather than misparse.
const VERSION: u32 = 1;
/// Subdirectory corrupt artifacts are moved into.
const QUARANTINE_DIR: &str = "_quarantine";

/// Counters describing one store's disk traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DiskStats {
    /// Loads served from a verified on-disk artifact.
    pub hits: u64,
    /// Loads that found nothing usable (absent or quarantined).
    pub misses: u64,
    /// Artifacts durably written.
    pub writes: u64,
    /// Artifacts moved to quarantine after failing verification.
    pub quarantined: u64,
    /// Advisory locks broken because their owner was dead.
    pub locks_broken: u64,
    /// Poll sleeps spent waiting for another process's in-flight
    /// production of an artifact this process then read instead of
    /// recomputing (see [`DiskStore::begin_flight`]).
    pub flight_waits: u64,
}

/// Content-addressed, crash-safe artifact directory (see module docs).
#[derive(Debug)]
pub struct DiskStore {
    root: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    writes: AtomicU64,
    quarantined: AtomicU64,
    locks_broken: AtomicU64,
    flight_waits: AtomicU64,
}

/// How long a flight waiter sleeps between polls of the producer's lock.
const FLIGHT_POLL: std::time::Duration = std::time::Duration::from_millis(5);
/// Upper bound on polls before a waiter gives up on the producer and
/// recomputes locally (~10 s). A correct-but-slow producer past this bound
/// costs one duplicate computation, never a wrong answer: the store is
/// content-addressed and writes are atomic renames.
const FLIGHT_MAX_POLLS: u64 = 2000;

/// Outcome of [`DiskStore::begin_flight`]: either this process owns
/// production of the artifact, or another process already produced it.
#[derive(Debug)]
pub enum Flight<'a> {
    /// This process holds the claim: compute the output, then
    /// [`FlightGuard::publish`] it (or drop the guard on failure, which
    /// releases the claim so another process can take over).
    Producer(FlightGuard<'a>),
    /// A verified artifact already exists (possibly published moments ago
    /// by another process this one waited on): decode these bytes.
    Ready(Vec<u8>),
}

/// RAII claim on producing one artifact. Holds the advisory lock file;
/// dropping without publishing removes the lock so waiters can claim.
#[derive(Debug)]
pub struct FlightGuard<'a> {
    store: &'a DiskStore,
    id: String,
    fp: Fingerprint,
    path: PathBuf,
    /// Whether this guard actually holds the lock file. An unarmed guard
    /// (claim failed on I/O error or wait timeout) still publishes — the
    /// write is atomic and content-addressed, so racing a live producer is
    /// a wasted write, never corruption — but removes no lock.
    armed: bool,
}

impl FlightGuard<'_> {
    /// Durably write the computed payload, then release the claim.
    /// Returns `true` when the artifact reached disk. `plan` injects the
    /// same durability fault classes as [`DiskStore::save`].
    pub fn publish(
        mut self,
        payload: &[u8],
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> bool {
        let mut bytes = compose_artifact(&self.id, self.fp, payload);
        inject_write_faults(&mut bytes, self.fp, plan);
        let written = match self.store.write_atomic(&self.path, &bytes) {
            Ok(()) => {
                self.store.writes.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) => {
                self.store.record_io(health, &self.path, "write", &e);
                false
            }
        };
        self.release(Some(health));
        written
    }

    /// Remove the lock file if this guard holds it.
    fn release(&mut self, health: Option<&HealthReport>) {
        if !self.armed {
            return;
        }
        self.armed = false;
        let lock = lock_path(&self.path);
        match fs::remove_file(&lock) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(e) => {
                if let Some(health) = health {
                    self.store.record_io(health, &lock, "unlock", &e);
                }
            }
        }
    }
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        // Abandoned claim (stage failed or guard dropped unpublished):
        // release so a waiting process can inherit production instead of
        // polling until our pid dies. No health handle here; an unlikely
        // remove error degrades to the ordinary stale-lock ladder.
        self.release(None);
    }
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`, sweeping temp
    /// files left behind by dead writers.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DiskStore> {
        let root = root.into();
        fs::create_dir_all(&root)?;
        fs::create_dir_all(root.join(QUARANTINE_DIR))?;
        let store = DiskStore {
            root,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            locks_broken: AtomicU64::new(0),
            flight_waits: AtomicU64::new(0),
        };
        store.sweep_dead_writers()?;
        Ok(store)
    }

    /// Root directory this store persists under.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Snapshot of the traffic counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            locks_broken: self.locks_broken.load(Ordering::Relaxed),
            flight_waits: self.flight_waits.load(Ordering::Relaxed),
        }
    }

    /// Final path of the artifact for `(id, fp)`.
    pub fn artifact_path(&self, id: &str, fp: Fingerprint) -> PathBuf {
        let dir: String = id
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        self.root
            .join(dir)
            .join(format!("{:016x}{:016x}.art", fp.lo, fp.hi))
    }

    /// Load and verify the artifact for `(id, fp)`. Returns the payload
    /// bytes on success; on any verification failure the file is
    /// quarantined, the fault recorded in `health`, and `None` returned
    /// so the caller recomputes.
    pub fn load(&self, id: &str, fp: Fingerprint, health: &HealthReport) -> Option<Vec<u8>> {
        let path = self.artifact_path(id, fp);
        let bytes = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
            Err(e) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                health.record(
                    Stage::Store,
                    FaultKind::StoreIoError,
                    RecoveryAction::NoneRequired,
                    format!("read {}: {e}", path.display()),
                );
                return None;
            }
        };
        match parse_artifact(id, fp, &bytes) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(payload)
            }
            Err(reason) => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.quarantine(&path, id, fp, reason, health);
                None
            }
        }
    }

    /// Durably persist `payload` for `(id, fp)`. Best-effort write-behind:
    /// returns `true` when the artifact reached disk, `false` when it was
    /// skipped (lock held by a live writer) or failed (I/O error, recorded
    /// in `health`). `plan` injects the durability fault classes — torn
    /// writes, payload bit flips, planted stale locks — deterministically
    /// keyed by the artifact fingerprint.
    pub fn save(
        &self,
        id: &str,
        fp: Fingerprint,
        payload: &[u8],
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> bool {
        let path = self.artifact_path(id, fp);
        let Some(dir) = path.parent() else {
            return false;
        };
        if let Err(e) = fs::create_dir_all(dir) {
            self.record_io(health, &path, "create dir", &e);
            return false;
        }
        // Fault injection: plant a lock owned by a dead pid so the
        // acquire path below must detect and break it.
        if plan.is_some_and(|p| p.stale_lock(fp.lo)) {
            self.plant_stale_lock(&path);
        }
        let lock = lock_path(&path);
        match self.acquire_lock(&lock, health) {
            Ok(true) => {}
            Ok(false) => return false,
            Err(e) => {
                self.record_io(health, &lock, "lock", &e);
                return false;
            }
        }
        let mut bytes = compose_artifact(id, fp, payload);
        inject_write_faults(&mut bytes, fp, plan);
        let written = match self.write_atomic(&path, &bytes) {
            Ok(()) => {
                self.writes.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) => {
                self.record_io(health, &path, "write", &e);
                false
            }
        };
        if let Err(e) = fs::remove_file(&lock) {
            self.record_io(health, &lock, "unlock", &e);
        }
        written
    }

    /// Temp-file + fsync + atomic-rename + directory-fsync write.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_path(path);
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        // Data must be on the medium before the rename publishes the name;
        // otherwise a crash could expose a name pointing at missing bytes.
        file.sync_all()?;
        drop(file);
        if let Err(e) = fs::rename(&tmp, path) {
            // The temp file is ours (pid-tagged); don't leave it behind.
            match fs::remove_file(&tmp) {
                Ok(()) | Err(_) => {} // already reporting the rename error
            }
            return Err(e);
        }
        // Persist the rename itself.
        if let Some(dir) = path.parent() {
            File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Claim single-flight production of the artifact for `(id, fp)`, or
    /// wait for the process that already claimed it (see module docs).
    ///
    /// The loop, in priority order: a verified artifact on disk wins
    /// immediately ([`Flight::Ready`]); otherwise the first process to
    /// create the lock file becomes the producer ([`Flight::Producer`]);
    /// a lock owned by a dead pid is broken through the ordinary
    /// stale-lock ladder inside [`Self::acquire_lock`]; a lock owned by a
    /// live pid puts this process to sleep in short polls, counted in
    /// `flight_waits`, re-checking the artifact each round. I/O errors and
    /// wait timeouts degrade to an *unarmed* producer: the caller computes
    /// locally and publishing stays safe because writes are atomic and
    /// content-addressed. `plan` injects the same planted-stale-lock fault
    /// as [`Self::save`] (torn writes and bit flips are injected at
    /// [`FlightGuard::publish`] time), so the flight path is subject to
    /// every durability fault class the write-behind path is.
    pub fn begin_flight(
        &self,
        id: &str,
        fp: Fingerprint,
        plan: Option<&FaultPlan>,
        health: &HealthReport,
    ) -> Flight<'_> {
        let path = self.artifact_path(id, fp);
        let guard = |armed| FlightGuard {
            store: self,
            id: id.to_string(),
            fp,
            path: path.clone(),
            armed,
        };
        if let Some(dir) = path.parent() {
            if let Err(e) = fs::create_dir_all(dir) {
                self.record_io(health, &path, "create dir", &e);
                return Flight::Producer(guard(false));
            }
        }
        // Fault injection: plant a lock owned by a dead pid so the claim
        // loop below must detect and break it before producing.
        if plan.is_some_and(|p| p.stale_lock(fp.lo)) {
            self.plant_stale_lock(&path);
        }
        let lock = lock_path(&path);
        let mut polls = 0u64;
        loop {
            // An existing artifact beats any claim — including one this
            // process could take: a waiter whose producer just published
            // lands here on its re-check. Guard with `exists` so polling
            // does not inflate the miss counter every 5 ms.
            if path.exists() {
                if let Some(bytes) = self.load(id, fp, health) {
                    return Flight::Ready(bytes);
                }
                // Verification failed: the file was quarantined and the
                // serving path is clear again — fall through to claim.
            }
            match self.acquire_lock(&lock, health) {
                Ok(true) => {
                    // Double-check under the lock: the producer this
                    // process raced may have published between the
                    // exists() probe above and this acquisition. Serving
                    // the fresh artifact beats recomputing it.
                    let mut claimed = guard(true);
                    if path.exists() {
                        if let Some(bytes) = self.load(id, fp, health) {
                            claimed.release(Some(health));
                            return Flight::Ready(bytes);
                        }
                    }
                    return Flight::Producer(claimed);
                }
                Ok(false) => {
                    // A live producer holds the claim: wait for it.
                    if polls >= FLIGHT_MAX_POLLS {
                        return Flight::Producer(guard(false));
                    }
                    polls += 1;
                    self.flight_waits.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(FLIGHT_POLL);
                }
                Err(e) => {
                    self.record_io(health, &lock, "flight claim", &e);
                    return Flight::Producer(guard(false));
                }
            }
        }
    }

    /// Try to take the advisory lock. `Ok(true)` = acquired, `Ok(false)` =
    /// held by a live process (skip the write).
    fn acquire_lock(&self, lock: &Path, health: &HealthReport) -> io::Result<bool> {
        // Two attempts: the second after breaking a stale lock.
        for _ in 0..2 {
            match OpenOptions::new().write(true).create_new(true).open(lock) {
                Ok(mut file) => {
                    // Stamping can fail (disk full, injected fault) after the
                    // lock file already exists. Propagating without removing
                    // it would leave a lock owned by this *live* pid, which
                    // the stale-lock breaker refuses to reclaim — every later
                    // save from this process would be silently skipped.
                    let stamped = file
                        .write_all(std::process::id().to_string().as_bytes())
                        .and_then(|()| file.sync_all());
                    match stamped {
                        Ok(()) => return Ok(true),
                        Err(e) => {
                            drop(file);
                            if let Err(rm) = fs::remove_file(lock) {
                                self.record_io(health, lock, "unlock", &rm);
                            }
                            return Err(e);
                        }
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let owner = match fs::read_to_string(lock) {
                        Ok(content) => content.trim().parse::<u32>().ok(),
                        // Racing unlock: the file vanished between the
                        // create attempt and the read. Retry the create.
                        Err(_) => continue,
                    };
                    if owner.is_some_and(pid_alive) {
                        return Ok(false);
                    }
                    // Owner is dead (or the lock content is garbage, which
                    // no live writer produces): break it.
                    match fs::remove_file(lock) {
                        Ok(()) => {
                            self.locks_broken.fetch_add(1, Ordering::Relaxed);
                            // Store-root-relative name: the event detail
                            // must not depend on where the store lives,
                            // or resumed runs' serialized health events
                            // would differ from the reference run's.
                            let shown = lock.strip_prefix(&self.root).unwrap_or(lock);
                            health.record(
                                Stage::Store,
                                FaultKind::StaleLock,
                                RecoveryAction::BrokeStaleLock,
                                format!(
                                    "{} owned by dead pid {}",
                                    shown.display(),
                                    owner.map_or_else(|| "?".to_string(), |p| p.to_string()),
                                ),
                            );
                        }
                        // Racing breaker got there first; retry the create.
                        Err(_) => {}
                    }
                }
                Err(e) => return Err(e),
            }
        }
        Ok(false)
    }

    /// Drop a lock file owned by pid 0 (never alive) next to `path`,
    /// simulating a writer that died without unlocking.
    fn plant_stale_lock(&self, path: &Path) {
        let lock = lock_path(path);
        match OpenOptions::new().write(true).create_new(true).open(&lock) {
            Ok(mut file) => match file.write_all(b"0") {
                Ok(()) | Err(_) => {} // empty lock content also reads as stale
            },
            // A lock already present is itself the condition under test.
            Err(_) => {}
        }
    }

    /// Quarantine the artifact for `(id, fp)` from outside the verify
    /// path — used by the runtime when a payload passes checksum
    /// verification but cannot be decoded (an incompatible codec is as
    /// unusable as a torn file).
    pub fn quarantine_artifact(
        &self,
        id: &str,
        fp: Fingerprint,
        reason: &'static str,
        health: &HealthReport,
    ) {
        let path = self.artifact_path(id, fp);
        self.quarantine(&path, id, fp, reason, health);
    }

    /// Move a failed artifact aside and record the corruption.
    fn quarantine(
        &self,
        path: &Path,
        id: &str,
        fp: Fingerprint,
        reason: &'static str,
        health: &HealthReport,
    ) {
        // ig-lint: allow(atomic-ordering) -- ticket counter: the returned
        // sequence number only has to be unique per quarantine filename;
        // no memory is published through it
        let seq = self.quarantined.fetch_add(1, Ordering::Relaxed);
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| "artifact".to_string());
        let dest = self
            .root
            .join(QUARANTINE_DIR)
            .join(format!("{}-{seq}-{name}", std::process::id()));
        let moved = match fs::rename(path, &dest) {
            Ok(()) => true,
            // Rename across the store root cannot cross filesystems, so a
            // failure means the file vanished or the quarantine dir did;
            // deleting still gets the corrupt bytes out of the serving path.
            Err(_) => matches!(fs::remove_file(path), Ok(())),
        };
        health.record(
            Stage::Store,
            FaultKind::ArtifactCorruption,
            RecoveryAction::QuarantinedArtifact,
            format!(
                "{id} {:016x}{:016x}: {reason}{}",
                fp.lo,
                fp.hi,
                if moved { "" } else { " (file already gone)" },
            ),
        );
    }

    fn record_io(&self, health: &HealthReport, path: &Path, op: &str, e: &io::Error) {
        health.record(
            Stage::Store,
            FaultKind::StoreIoError,
            RecoveryAction::NoneRequired,
            format!("{op} {}: {e}", path.display()),
        );
    }

    /// Remove temp files whose writing pid is dead — leftovers of crashed
    /// writers. Live writers' temp files are left alone.
    fn sweep_dead_writers(&self) -> io::Result<()> {
        for entry in fs::read_dir(&self.root)? {
            let dir = entry?.path();
            if !dir.is_dir() || dir.ends_with(QUARANTINE_DIR) {
                continue;
            }
            for entry in fs::read_dir(&dir)? {
                let path = entry?.path();
                let name = match path.file_name() {
                    Some(n) => n.to_string_lossy().into_owned(),
                    None => continue,
                };
                let Some(rest) = name.strip_suffix(".tmp") else {
                    continue;
                };
                let owner = rest.rsplit('.').next().and_then(|p| p.parse::<u32>().ok());
                if owner.is_some_and(pid_alive) {
                    continue;
                }
                match fs::remove_file(&path) {
                    // A racing sweeper may have removed it already.
                    Ok(()) | Err(_) => {}
                }
            }
        }
        Ok(())
    }
}

/// Advisory lock path for an artifact path.
fn lock_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(".lock");
    PathBuf::from(name)
}

/// Pid-tagged temp path in the artifact's directory (same filesystem, so
/// the rename is atomic; the pid tag lets `open` sweep dead writers).
fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_owned();
    name.push(format!(".{}.tmp", std::process::id()));
    PathBuf::from(name)
}

/// Is the process alive? Reads `/proc`; when procfs is unavailable the
/// answer is "dead", which at worst breaks a live lock — harmless here,
/// because content-addressed writers racing on one key write identical
/// bytes through an atomic rename.
fn pid_alive(pid: u32) -> bool {
    Path::new("/proc").join(pid.to_string()).exists()
}

/// 128-bit payload checksum (both fingerprint streams over the bytes).
fn checksum(payload: &[u8]) -> Fingerprint {
    let mut h = FingerprintHasher::new();
    h.write_bytes(payload);
    h.finish()
}

/// Header + checksum + length-prefixed payload.
fn compose_artifact(id: &str, fp: Fingerprint, payload: &[u8]) -> Vec<u8> {
    let sum = checksum(payload);
    let mut enc = Enc::new();
    enc.put_u64(MAGIC);
    enc.put_u32(VERSION);
    enc.put_str(id);
    enc.put_u64(fp.lo);
    enc.put_u64(fp.hi);
    enc.put_u64(sum.lo);
    enc.put_u64(sum.hi);
    enc.put_bytes(payload);
    enc.into_bytes()
}

/// Verify every header field and the payload checksum; `Err` is the
/// human-readable reason recorded with the quarantined file.
fn parse_artifact(id: &str, fp: Fingerprint, bytes: &[u8]) -> Result<Vec<u8>, &'static str> {
    let mut dec = Dec::new(bytes);
    if dec.u64() != Some(MAGIC) {
        return Err("bad magic (not an artifact or torn header)");
    }
    if dec.u32() != Some(VERSION) {
        return Err("unsupported format version");
    }
    if dec.str_() != Some(id) {
        return Err("stage id mismatch");
    }
    if dec.u64() != Some(fp.lo) || dec.u64() != Some(fp.hi) {
        return Err("key fingerprint mismatch");
    }
    let sum = Fingerprint {
        lo: dec.u64().ok_or("truncated checksum")?,
        hi: dec.u64().ok_or("truncated checksum")?,
    };
    let payload = dec.bytes().ok_or("truncated payload")?;
    if !dec.done() {
        return Err("trailing bytes after payload");
    }
    if checksum(payload) != sum {
        return Err("payload checksum mismatch");
    }
    Ok(payload.to_vec())
}

/// Apply the plan's torn-write / bit-flip faults to the composed file
/// bytes (after the checksum was computed, so verification must catch it).
fn inject_write_faults(bytes: &mut Vec<u8>, fp: Fingerprint, plan: Option<&FaultPlan>) {
    let Some(plan) = plan else { return };
    if plan.torn_write(fp.lo) {
        // Lose the tail third, as if the medium dropped the last extents.
        let keep = bytes.len() - bytes.len() / 3;
        bytes.truncate(keep);
    } else if plan.artifact_bitflip(fp.lo) {
        // Flip one deterministic bit somewhere past the magic so the file
        // still parses far enough to reach verification.
        let lo = 12usize; // magic (8) + version (4)
        if bytes.len() > lo {
            let pos = lo + (fp.hi as usize) % (bytes.len() - lo);
            if let Some(byte) = bytes.get_mut(pos) {
                *byte ^= 1 << (fp.hi % 8);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fingerprint::Fingerprintable;

    fn temp_root(tag: &str) -> PathBuf {
        // Pid-tagged so parallel test binaries don't collide; the tag
        // separates tests within one binary.
        let root = std::env::temp_dir().join(format!("ig-disk-{tag}-{}", std::process::id()));
        match fs::remove_dir_all(&root) {
            Ok(()) | Err(_) => {}
        }
        root
    }

    fn open(tag: &str) -> DiskStore {
        match DiskStore::open(temp_root(tag)) {
            Ok(store) => store,
            Err(e) => {
                assert!(false, "open failed: {e}");
                unreachable!()
            }
        }
    }

    #[test]
    fn save_then_load_round_trips() {
        let store = open("roundtrip");
        let health = HealthReport::new();
        let fp = 1u64.fingerprint();
        let payload = b"artifact payload bytes".to_vec();
        assert!(store.save("test.stage", fp, &payload, None, &health));
        assert_eq!(store.load("test.stage", fp, &health), Some(payload));
        assert!(health.is_clean());
        let stats = store.stats();
        assert_eq!((stats.hits, stats.writes, stats.quarantined), (1, 1, 0));
    }

    #[test]
    fn absent_artifact_is_a_plain_miss() {
        let store = open("miss");
        let health = HealthReport::new();
        assert_eq!(store.load("test.stage", 2u64.fingerprint(), &health), None);
        assert!(health.is_clean(), "absence is not a fault");
        assert_eq!(store.stats().misses, 1);
    }

    #[test]
    fn flipped_bit_is_quarantined_and_recorded() {
        let store = open("bitflip");
        let health = HealthReport::new();
        let fp = 3u64.fingerprint();
        assert!(store.save("test.stage", fp, b"payload", None, &health));
        let path = store.artifact_path("test.stage", fp);
        let mut bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                assert!(false, "read back failed: {e}");
                return;
            }
        };
        // Flip one payload bit (last byte is inside the payload).
        if let Some(last) = bytes.last_mut() {
            *last ^= 0x10;
        }
        match fs::write(&path, &bytes) {
            Ok(()) => {}
            Err(e) => {
                assert!(false, "rewrite failed: {e}");
                return;
            }
        }
        assert_eq!(store.load("test.stage", fp, &health), None);
        assert!(!path.exists(), "corrupt file must leave the serving path");
        assert_eq!(health.count(FaultKind::ArtifactCorruption), 1);
        assert_eq!(health.count_action(RecoveryAction::QuarantinedArtifact), 1);
        assert_eq!(store.stats().quarantined, 1);
    }

    #[test]
    fn truncation_at_every_prefix_is_rejected() {
        let store = open("torn");
        let health = HealthReport::new();
        let fp = 4u64.fingerprint();
        assert!(store.save("test.stage", fp, b"0123456789abcdef", None, &health));
        let path = store.artifact_path("test.stage", fp);
        let full = match fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                assert!(false, "read back failed: {e}");
                return;
            }
        };
        for cut in 0..full.len() {
            assert!(
                parse_artifact("test.stage", fp, &full[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
        }
        assert!(parse_artifact("test.stage", fp, &full).is_ok());
    }

    #[test]
    fn key_and_id_mismatches_are_rejected() {
        let fp = 5u64.fingerprint();
        let bytes = compose_artifact("test.stage", fp, b"x");
        assert!(parse_artifact("other.stage", fp, &bytes).is_err());
        assert!(parse_artifact("test.stage", 6u64.fingerprint(), &bytes).is_err());
        assert!(parse_artifact("test.stage", fp, &bytes).is_ok());
    }

    #[test]
    fn torn_write_injector_produces_quarantine_on_load() {
        let store = open("inject-torn");
        let health = HealthReport::new();
        let plan = FaultPlan {
            torn_write_rate: 1.0,
            ..FaultPlan::default()
        };
        let fp = 7u64.fingerprint();
        assert!(store.save("test.stage", fp, b"payload", Some(&plan), &health));
        assert_eq!(store.load("test.stage", fp, &health), None);
        assert_eq!(health.count(FaultKind::ArtifactCorruption), 1);
        // After quarantine a clean rewrite serves again.
        assert!(store.save("test.stage", fp, b"payload", None, &health));
        assert_eq!(
            store.load("test.stage", fp, &health),
            Some(b"payload".to_vec())
        );
    }

    #[test]
    fn bitflip_injector_produces_quarantine_on_load() {
        let store = open("inject-flip");
        let health = HealthReport::new();
        let plan = FaultPlan {
            artifact_bitflip_rate: 1.0,
            ..FaultPlan::default()
        };
        let fp = 8u64.fingerprint();
        assert!(store.save("test.stage", fp, b"payload bytes", Some(&plan), &health));
        assert_eq!(store.load("test.stage", fp, &health), None);
        assert_eq!(health.count(FaultKind::ArtifactCorruption), 1);
    }

    #[test]
    fn stale_lock_is_broken_and_recorded() {
        let store = open("stale-lock");
        let health = HealthReport::new();
        let plan = FaultPlan {
            stale_lock_rate: 1.0,
            ..FaultPlan::default()
        };
        let fp = 9u64.fingerprint();
        // The planted dead-pid lock must be detected, broken, and the
        // write must then proceed.
        assert!(store.save("test.stage", fp, b"payload", Some(&plan), &health));
        assert_eq!(health.count(FaultKind::StaleLock), 1);
        assert_eq!(health.count_action(RecoveryAction::BrokeStaleLock), 1);
        assert_eq!(store.stats().locks_broken, 1);
        assert_eq!(
            store.load("test.stage", fp, &health),
            Some(b"payload".to_vec())
        );
    }

    #[test]
    fn live_lock_skips_the_write() {
        let store = open("live-lock");
        let health = HealthReport::new();
        let fp = 10u64.fingerprint();
        let path = store.artifact_path("test.stage", fp);
        let Some(dir) = path.parent() else {
            assert!(false, "artifact path has no parent");
            return;
        };
        match fs::create_dir_all(dir) {
            Ok(()) => {}
            Err(e) => {
                assert!(false, "create dir failed: {e}");
                return;
            }
        }
        // A lock owned by *this* (live) process.
        match fs::write(lock_path(&path), std::process::id().to_string()) {
            Ok(()) => {}
            Err(e) => {
                assert!(false, "lock write failed: {e}");
                return;
            }
        }
        assert!(!store.save("test.stage", fp, b"payload", None, &health));
        assert_eq!(store.load("test.stage", fp, &health), None);
    }

    #[test]
    fn open_sweeps_dead_writer_tmp_files() {
        let root = temp_root("sweep");
        let dir = root.join("test-stage");
        match fs::create_dir_all(&dir) {
            Ok(()) => {}
            Err(e) => {
                assert!(false, "setup failed: {e}");
                return;
            }
        }
        let dead = dir.join("0000.art.0.tmp"); // pid 0 is never alive
        let live = dir.join(format!("0001.art.{}.tmp", std::process::id()));
        match fs::write(&dead, b"x").and_then(|()| fs::write(&live, b"y")) {
            Ok(()) => {}
            Err(e) => {
                assert!(false, "setup failed: {e}");
                return;
            }
        }
        match DiskStore::open(&root) {
            Ok(_) => {}
            Err(e) => {
                assert!(false, "open failed: {e}");
                return;
            }
        }
        assert!(!dead.exists(), "dead writer's tmp file must be swept");
        assert!(live.exists(), "live writer's tmp file must survive");
    }

    #[test]
    fn flight_over_an_existing_artifact_is_ready_immediately() {
        let store = open("flight-ready");
        let health = HealthReport::new();
        let fp = 12u64.fingerprint();
        assert!(store.save("test.stage", fp, b"already here", None, &health));
        match store.begin_flight("test.stage", fp, None, &health) {
            Flight::Ready(bytes) => assert_eq!(bytes, b"already here"),
            Flight::Producer(_) => assert!(false, "artifact on disk must short-circuit the claim"),
        }
        assert_eq!(store.stats().flight_waits, 0, "no producer to wait on");
    }

    #[test]
    fn flight_producer_publishes_and_releases_the_lock() {
        let store = open("flight-produce");
        let health = HealthReport::new();
        let fp = 13u64.fingerprint();
        let guard = match store.begin_flight("test.stage", fp, None, &health) {
            Flight::Producer(guard) => guard,
            Flight::Ready(_) => {
                assert!(false, "empty store cannot be ready");
                return;
            }
        };
        let lock = lock_path(&store.artifact_path("test.stage", fp));
        assert!(
            lock.exists(),
            "producer must hold the claim while computing"
        );
        assert!(guard.publish(b"produced", None, &health));
        assert!(!lock.exists(), "publish must release the claim");
        assert_eq!(
            store.load("test.stage", fp, &health),
            Some(b"produced".to_vec())
        );
        assert!(health.is_clean());
    }

    #[test]
    fn abandoned_flight_releases_the_claim_for_the_next_caller() {
        let store = open("flight-abandon");
        let health = HealthReport::new();
        let fp = 14u64.fingerprint();
        match store.begin_flight("test.stage", fp, None, &health) {
            Flight::Producer(guard) => drop(guard), // stage failed: publish nothing
            Flight::Ready(_) => assert!(false, "empty store cannot be ready"),
        }
        // The next claimant inherits production instead of waiting.
        match store.begin_flight("test.stage", fp, None, &health) {
            Flight::Producer(_) => {}
            Flight::Ready(_) => assert!(false, "nothing was published"),
        }
        assert_eq!(store.stats().flight_waits, 0, "no live producer to wait on");
    }

    #[test]
    fn flight_breaks_a_dead_producers_lock_and_inherits() {
        let store = open("flight-dead");
        let health = HealthReport::new();
        let fp = 15u64.fingerprint();
        let path = store.artifact_path("test.stage", fp);
        let Some(dir) = path.parent() else {
            assert!(false, "artifact path has no parent");
            return;
        };
        match fs::create_dir_all(dir).and_then(|()| fs::write(lock_path(&path), "0")) {
            Ok(()) => {}
            Err(e) => {
                assert!(false, "setup failed: {e}");
                return;
            }
        }
        match store.begin_flight("test.stage", fp, None, &health) {
            Flight::Producer(_) => {}
            Flight::Ready(_) => assert!(false, "nothing was published"),
        }
        assert_eq!(store.stats().locks_broken, 1);
        assert_eq!(health.count(FaultKind::StaleLock), 1);
    }

    #[test]
    fn waiter_sleeps_until_the_producer_publishes_then_reads() {
        let store = open("flight-wait");
        let fp = 16u64.fingerprint();
        std::thread::scope(|scope| {
            let producer = scope.spawn(|| {
                let health = HealthReport::new();
                let guard = match store.begin_flight("test.stage", fp, None, &health) {
                    Flight::Producer(guard) => guard,
                    Flight::Ready(_) => return false,
                };
                // Hold the claim long enough that the waiter provably
                // sleeps at least once before we publish.
                std::thread::sleep(std::time::Duration::from_millis(30));
                guard.publish(b"from producer", None, &health)
            });
            // Let the producer take the lock first.
            std::thread::sleep(std::time::Duration::from_millis(10));
            let health = HealthReport::new();
            match store.begin_flight("test.stage", fp, None, &health) {
                Flight::Ready(bytes) => assert_eq!(bytes, b"from producer"),
                // The waiter must not inherit production from a live
                // producer in this process (same pid, provably alive).
                Flight::Producer(_) => assert!(false, "waiter stole a live claim"),
            }
            match producer.join() {
                Ok(published) => assert!(published, "producer failed to publish"),
                Err(_) => assert!(false, "producer panicked"),
            }
        });
        assert!(
            store.stats().flight_waits > 0,
            "waiter must have slept at least one poll"
        );
    }

    #[test]
    fn cross_store_sharing_hits_the_same_file() {
        let root = temp_root("share");
        let health = HealthReport::new();
        let fp = 11u64.fingerprint();
        {
            let writer = match DiskStore::open(&root) {
                Ok(s) => s,
                Err(e) => {
                    assert!(false, "open failed: {e}");
                    return;
                }
            };
            assert!(writer.save("test.stage", fp, b"shared", None, &health));
        }
        let reader = match DiskStore::open(&root) {
            Ok(s) => s,
            Err(e) => {
                assert!(false, "open failed: {e}");
                return;
            }
        };
        assert_eq!(
            reader.load("test.stage", fp, &health),
            Some(b"shared".to_vec())
        );
        assert!(health.is_clean());
    }
}
