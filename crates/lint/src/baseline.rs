//! Suppression-debt budget.
//!
//! Every `ig-lint: allow(...)` is debt: a place where the invariant is
//! argued around instead of upheld. The committed baseline
//! (`results/lint_baseline.json`) records the budget and the current debt;
//! `check --baseline` fails when the workspace's live suppression count
//! exceeds the budget, so debt can only grow by an explicit, reviewed edit
//! to the committed file.
//!
//! The format is produced and consumed only by this module, so the reader
//! is a minimal key scanner rather than a general JSON parser (the repo
//! ships no serde; see `report::to_json` for the same trade).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::Report;

/// The committed suppression-debt record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Baseline {
    /// Hard ceiling on workspace-wide allow annotations.
    pub suppression_budget: usize,
    /// Allow count at the time the baseline was committed (informational).
    pub recorded_allows: usize,
    /// Per-rule suppression counts at commit time (informational).
    pub by_rule: BTreeMap<String, usize>,
}

impl Baseline {
    /// Snapshot a report into a baseline with the given budget.
    pub fn from_report(report: &Report, suppression_budget: usize) -> Self {
        let mut by_rule: BTreeMap<String, usize> = BTreeMap::new();
        for a in &report.allows {
            for r in &a.rules {
                *by_rule.entry(r.clone()).or_insert(0) += 1;
            }
        }
        Baseline {
            suppression_budget,
            recorded_allows: report.allows.len(),
            by_rule,
        }
    }

    /// Check a live report against the budget. Returns human-readable
    /// failures; empty means within budget.
    pub fn enforce(&self, report: &Report) -> Vec<String> {
        let mut failures = Vec::new();
        let live = report.allows.len();
        if live > self.suppression_budget {
            failures.push(format!(
                "suppression debt grew: {live} allow annotations exceed the \
                 committed budget of {} (raise the budget in \
                 results/lint_baseline.json only with review, or remove a \
                 suppression)",
                self.suppression_budget
            ));
        }
        failures
    }

    /// Render as the committed JSON document.
    pub fn render(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"suppression_budget\": {},", self.suppression_budget);
        let _ = writeln!(s, "  \"recorded_allows\": {},", self.recorded_allows);
        s.push_str("  \"by_rule\": {");
        let mut first = true;
        for (rule, n) in &self.by_rule {
            if !first {
                s.push(',');
            }
            first = false;
            let _ = write!(s, "\n    \"{rule}\": {n}");
        }
        if !self.by_rule.is_empty() {
            s.push_str("\n  ");
        }
        s.push_str("}\n}\n");
        s
    }

    /// Parse the committed document. Tolerant of whitespace and key order;
    /// errors on missing keys so a truncated file cannot masquerade as a
    /// zero budget.
    pub fn parse(text: &str) -> Result<Self, String> {
        let suppression_budget = extract_usize(text, "suppression_budget")
            .ok_or("baseline missing `suppression_budget`")?;
        let recorded_allows =
            extract_usize(text, "recorded_allows").ok_or("baseline missing `recorded_allows`")?;
        // ig-lint: allow(error-flow) -- by_rule is informational; an absent
        // map is a valid empty breakdown, and the mandatory keys error above
        let by_rule = extract_by_rule(text).unwrap_or_default();
        Ok(Baseline {
            suppression_budget,
            recorded_allows,
            by_rule,
        })
    }
}

/// Find `"key"` and read the unsigned integer after its `:`.
fn extract_usize(text: &str, key: &str) -> Option<usize> {
    let needle = format!("\"{key}\"");
    let at = text.find(&needle)? + needle.len();
    let rest = text.get(at..)?.trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    if digits.is_empty() {
        None
    } else {
        digits.parse().ok()
    }
}

/// Read the `"by_rule": { "name": n, ... }` object.
fn extract_by_rule(text: &str) -> Option<BTreeMap<String, usize>> {
    let needle = "\"by_rule\"";
    let at = text.find(needle)? + needle.len();
    let rest = text.get(at..)?.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('{')?;
    let close = rest.find('}')?;
    let body = &rest[..close];
    let mut map = BTreeMap::new();
    for pair in body.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (name, value) = pair.split_once(':')?;
        let name = name.trim().trim_matches('"').to_string();
        let value: usize = value.trim().parse().ok()?;
        map.insert(name, value);
    }
    Some(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::ReportedAllow;

    fn report_with_allows(n: usize) -> Report {
        let mut r = Report::default();
        for i in 0..n {
            r.allows.push(ReportedAllow {
                path: format!("crates/x/src/f{i}.rs"),
                line: 1,
                rules: vec!["panic".to_string()],
                reason: "test".to_string(),
            });
        }
        r
    }

    #[test]
    fn round_trips_through_render_and_parse() {
        let b = Baseline::from_report(&report_with_allows(3), 10);
        let parsed = Baseline::parse(&b.render()).expect("parse");
        assert_eq!(parsed, b);
        assert_eq!(parsed.by_rule.get("panic"), Some(&3));
    }

    #[test]
    fn within_budget_passes() {
        let b = Baseline::from_report(&report_with_allows(3), 5);
        assert!(b.enforce(&report_with_allows(5)).is_empty());
    }

    #[test]
    fn over_budget_fails() {
        let b = Baseline::from_report(&report_with_allows(3), 5);
        let failures = b.enforce(&report_with_allows(6));
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("budget of 5"));
    }

    #[test]
    fn truncated_baseline_is_an_error_not_zero() {
        assert!(Baseline::parse("{}").is_err());
        assert!(Baseline::parse("{\"suppression_budget\": 4}").is_err());
    }

    #[test]
    fn empty_by_rule_renders_cleanly() {
        let b = Baseline {
            suppression_budget: 0,
            recorded_allows: 0,
            by_rule: BTreeMap::new(),
        };
        let parsed = Baseline::parse(&b.render()).expect("parse");
        assert_eq!(parsed, b);
    }
}
