//! NEU simulacrum: six surface-defect texture classes on hot-rolled steel.
//!
//! Unlike the other datasets, NEU has no defect-free images; the task is
//! multi-class ("which defect is present", Section 6.1) and the defects
//! occupy large portions of the image — the regime where GOGGLES'
//! object-centric prototypes also work well (Section 6.2).

use crate::spec::DatasetSpec;
use crate::surface::{corrupt_with_noise, rolled_steel};
use crate::{Dataset, LabeledImage, TaskType};
use ig_imaging::filter::gaussian_blur;
use ig_imaging::noise::fbm;
use ig_imaging::{BBox, GrayImage};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Class order used for labels 0..6 (matching Figure 8's panel order).
pub const NEU_CLASSES: [&str; 6] = [
    "rolled-in scale",
    "patches",
    "crazing",
    "pitted surface",
    "inclusion",
    "scratches",
];

/// Emit every image slot in generation (pre-shuffle) order — class-major,
/// `per_class` images each — threading all random draws through `rng`
/// exactly as [`generate`] always has. Shared by the monolithic path and
/// the out-of-core replay ([`generate_range`]).
fn emit(spec: &DatasetSpec, rng: &mut StdRng, sink: &mut dyn FnMut(LabeledImage)) {
    let per_class = (spec.n / 6).max(1);
    for class in 0..6 {
        for i in 0..per_class {
            let surface_seed = spec
                .seed
                .wrapping_mul(41)
                .wrapping_add((class * per_class + i) as u64);
            let mut image = rolled_steel(surface_seed, spec.width, spec.height);
            let difficult = rng.gen_bool(spec.difficult_fraction);
            let strength = if difficult { 0.35 } else { 1.0 };
            let defect_boxes = paint_class(&mut image, class, strength, surface_seed, rng);
            let noisy = rng.gen_bool(spec.noisy_fraction);
            if noisy {
                image = corrupt_with_noise(&image, surface_seed.wrapping_add(3), rng);
            }
            sink(LabeledImage {
                image,
                label: class,
                defect_boxes,
                noisy,
                difficult,
            });
        }
    }
}

/// Generate the NEU stand-in: `spec.n` images split evenly over 6 classes.
pub fn generate(spec: &DatasetSpec) -> Dataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let per_class = (spec.n / 6).max(1);
    let mut images = Vec::with_capacity(per_class * 6);
    emit(spec, &mut rng, &mut |img| images.push(img));
    images.shuffle(&mut rng);
    Dataset {
        name: "NEU".to_string(),
        task: TaskType::MultiClass(6),
        images,
    }
}

/// Images `start..end` of [`generate`]'s (shuffled) output, bit-identical,
/// holding at most one off-shard image at a time — see
/// [`crate::replay_range`]. NEU's slot count is `max(n / 6, 1) * 6`, which
/// may differ from `spec.n`; ranges index the *actual* output.
pub fn generate_range(spec: &DatasetSpec, start: usize, end: usize) -> Dataset {
    Dataset {
        name: "NEU".to_string(),
        task: TaskType::MultiClass(6),
        images: crate::replay_range(spec, emit, start, end),
    }
}

/// Paint the class-specific texture; returns gold boxes covering the
/// affected regions. `strength` scales contrast (difficult images use a
/// fraction of it).
fn paint_class(
    img: &mut GrayImage,
    class: usize,
    strength: f32,
    seed: u64,
    rng: &mut StdRng,
) -> Vec<BBox> {
    let (w, h) = img.dims();
    let mut boxes = Vec::new();
    match class {
        // Rolled-in scale: horizontally elongated dark flakes.
        0 => {
            for _ in 0..rng.gen_range(3..6) {
                let fw = rng.gen_range(w / 5..w / 2);
                let fh = rng.gen_range(h / 10..h / 4).max(2);
                let x0 = rng.gen_range(0..w - fw);
                let y0 = rng.gen_range(0..h - fh);
                let mut flake = GrayImage::from_fn(fw, fh, |x, y| {
                    let v = fbm(seed.wrapping_add(17), x as f32, y as f32 * 2.0, 0.15, 3);
                    if v > 0.45 {
                        -0.25 * strength
                    } else {
                        0.0
                    }
                });
                flake = gaussian_blur(&flake, 0.6);
                img.blend_add(&flake, x0 as isize, y0 as isize, 1.0);
                boxes.push(BBox::new(x0 as f32, y0 as f32, fw as f32, fh as f32));
            }
        }
        // Patches: large irregular bright regions.
        1 => {
            for _ in 0..rng.gen_range(1..3) {
                let fw = rng.gen_range(w / 3..(3 * w) / 4);
                let fh = rng.gen_range(h / 3..(3 * h) / 4);
                let x0 = rng.gen_range(0..w - fw);
                let y0 = rng.gen_range(0..h - fh);
                let mut patch = GrayImage::from_fn(fw, fh, |x, y| {
                    let v = fbm(seed.wrapping_add(23), x as f32, y as f32, 0.08, 3);
                    if v > 0.4 {
                        0.3 * strength
                    } else {
                        0.0
                    }
                });
                patch = gaussian_blur(&patch, 1.0);
                img.blend_add(&patch, x0 as isize, y0 as isize, 1.0);
                boxes.push(BBox::new(x0 as f32, y0 as f32, fw as f32, fh as f32));
            }
        }
        // Crazing: dense network of fine parallel-ish cracks.
        2 => {
            let count = (w / 6).max(6);
            let angle = rng.gen_range(-0.3..0.3f32);
            for k in 0..count {
                let x = (k * w) / count;
                let dx = angle.tan() * h as f32;
                let jitter = rng.gen_range(-2.0..2.0f32);
                img.draw_line(
                    x as f32 + jitter,
                    0.0,
                    x as f32 + dx + jitter,
                    h as f32 - 1.0,
                    0.7,
                    (img.get(x.min(w - 1), h / 2) - 0.18 * strength).clamp(0.0, 1.0),
                );
            }
            boxes.push(BBox::new(0.0, 0.0, w as f32, h as f32));
        }
        // Pitted surface: many small dark pits.
        3 => {
            let count = rng.gen_range(25..45);
            let mut min_x = w as f32;
            let mut min_y = h as f32;
            let mut max_x = 0.0f32;
            let mut max_y = 0.0f32;
            for _ in 0..count {
                let cx = rng.gen_range(2.0..w as f32 - 2.0);
                let cy = rng.gen_range(2.0..h as f32 - 2.0);
                let r = rng.gen_range(0.8..2.0f32);
                let v = (img.get(cx as usize, cy as usize) - 0.3 * strength).clamp(0.0, 1.0);
                img.fill_disk(cx, cy, r, v);
                min_x = min_x.min(cx - r);
                min_y = min_y.min(cy - r);
                max_x = max_x.max(cx + r);
                max_y = max_y.max(cy + r);
            }
            boxes.push(BBox::from_corners(min_x, min_y, max_x, max_y));
        }
        // Inclusion: a few thick dark elongated streaks.
        4 => {
            for _ in 0..rng.gen_range(1..4) {
                let len = rng.gen_range(h as f32 * 0.3..h as f32 * 0.9);
                let x = rng.gen_range(2.0..w as f32 - 2.0);
                let y0 = rng.gen_range(0.0..h as f32 - len);
                let thickness = rng.gen_range(2.0..4.0f32);
                let drift = rng.gen_range(-4.0..4.0f32);
                let v = (img.get(x as usize, y0 as usize) - 0.35 * strength).clamp(0.0, 1.0);
                img.draw_line(x, y0, x + drift, y0 + len, thickness, v);
                boxes.push(BBox::from_corners(
                    (x - thickness).min(x + drift - thickness),
                    y0,
                    (x + thickness).max(x + drift + thickness),
                    y0 + len,
                ));
            }
        }
        // Scratches: bright thin lines.
        5 => {
            for _ in 0..rng.gen_range(1..3) {
                let len = rng.gen_range(h as f32 * 0.4..h as f32 * 0.95);
                let x = rng.gen_range(2.0..w as f32 - 2.0);
                let y0 = rng.gen_range(0.0..(h as f32 - len).max(1.0));
                let drift = rng.gen_range(-6.0..6.0f32);
                let v = (img.get(x as usize, y0 as usize) + 0.35 * strength).clamp(0.0, 1.0);
                img.draw_line(x, y0, x + drift, y0 + len, 1.2, v);
                boxes.push(BBox::from_corners(
                    (x - 1.5).min(x + drift - 1.5),
                    y0,
                    (x + 1.5).max(x + drift + 1.5),
                    y0 + len,
                ));
            }
        }
        // Class indices come from `0..6` loops in the generator; an
        // out-of-range class is a programming error — loud under
        // debug_assertions, a defect-free image in release.
        _ => debug_assert!(false, "NEU has 6 classes"),
    }
    img.clamp(0.0, 1.0);
    boxes.into_iter().filter_map(|b| b.clip(w, h)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::DatasetKind;
    use ig_imaging::stats::stats;

    #[test]
    fn classes_are_balanced() {
        let spec = DatasetSpec::quick(DatasetKind::Neu, 9);
        let d = generate(&spec);
        let mut counts = [0usize; 6];
        for img in &d.images {
            counts[img.label] += 1;
        }
        assert!(counts.iter().all(|&c| c == counts[0]));
        assert_eq!(d.task, TaskType::MultiClass(6));
    }

    #[test]
    fn every_image_has_defect_boxes() {
        let spec = DatasetSpec::quick(DatasetKind::Neu, 10);
        let d = generate(&spec);
        for img in &d.images {
            assert!(!img.defect_boxes.is_empty(), "class {}", img.label);
        }
    }

    #[test]
    fn neu_defects_are_large_relative_to_image() {
        // Section 6.1: "these defects take larger portions of the images".
        let spec = DatasetSpec::quick(DatasetKind::Neu, 11);
        let d = generate(&spec);
        let mut large = 0;
        for img in &d.images {
            let area: f32 = img.defect_boxes.iter().map(|b| b.area()).sum();
            if area > (img.image.len() as f32) * 0.05 {
                large += 1;
            }
        }
        assert!(
            large * 2 > d.len(),
            "only {large}/{} images have large defects",
            d.len()
        );
    }

    #[test]
    fn classes_are_visually_distinct() {
        // Texture statistics should differ across classes so that a
        // classifier has signal. Compare pitted (many dark dots → lower
        // mean) against scratches (bright lines → higher mean).
        let spec = DatasetSpec {
            n: 60,
            noisy_fraction: 0.0,
            difficult_fraction: 0.0,
            ..DatasetSpec::quick(DatasetKind::Neu, 12)
        };
        let d = generate(&spec);
        let mean_of = |class: usize| {
            let (sum, count) = d
                .images
                .iter()
                .filter(|i| i.label == class)
                .map(|i| stats(&i.image).mean)
                .fold((0.0f32, 0usize), |(s, c), m| (s + m, c + 1));
            sum / count as f32
        };
        assert!(mean_of(5) > mean_of(3), "scratches vs pitted means");
    }

    #[test]
    fn deterministic_per_seed() {
        let spec = DatasetSpec::quick(DatasetKind::Neu, 13);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.labels(), b.labels());
        assert_eq!(a.images[3].image, b.images[3].image);
    }
}
