//! # ig-eval
//!
//! Evaluation machinery for the Inspector Gadget reproduction: confusion
//! matrices, precision/recall/F1 (the paper's headline metric, chosen over
//! ROC-AUC because the industrial datasets are heavily imbalanced —
//! Section 6.1), stratified splits, and the Section 6.7 error-cause
//! taxonomy (matching failure / noisy data / difficult to humans).

#![warn(missing_docs)]

pub mod error_analysis;
pub mod metrics;
pub mod split;

pub use error_analysis::{categorize_errors, ErrorBreakdown, ErrorCause, SampleDiagnostics};
pub use metrics::{binary_f1, macro_f1, ConfusionMatrix, PrfScores};
pub use split::{stratified_split, Split};
