//! Spectral normalization (Miyato et al., 2018) via power iteration.
//!
//! The paper applies spectral normalization to the RGAN discriminator "to
//! adjust the training speed for better training stability" (Section 4.1).
//! We estimate the largest singular value of each weight matrix with a few
//! power-iteration steps and divide the weights by it, capping the layer's
//! Lipschitz constant at 1.

use crate::matrix::Matrix;
use rand::Rng;

/// Persistent power-iteration state for one weight matrix; reusing the
/// left/right vectors across training steps makes one iteration per step
/// sufficient, as in the original paper.
#[derive(Debug, Clone)]
pub struct SpectralNorm {
    u: Vec<f32>,
    v: Vec<f32>,
}

impl SpectralNorm {
    /// Initialize with a random unit `u` for a `rows x cols` matrix.
    pub fn new(rows: usize, cols: usize, rng: &mut impl Rng) -> Self {
        let mut u: Vec<f32> = (0..rows).map(|_| rng.gen_range(-1.0..1.0)).collect();
        normalize(&mut u);
        Self {
            u,
            v: vec![0.0; cols],
        }
    }

    /// Run `iters` power iterations against `w` and return the estimated
    /// spectral norm (largest singular value).
    pub fn estimate(&mut self, w: &Matrix, iters: usize) -> f32 {
        assert_eq!(w.rows(), self.u.len(), "spectral norm shape drift");
        assert_eq!(w.cols(), self.v.len(), "spectral norm shape drift");
        for _ in 0..iters.max(1) {
            // v = W^T u / ||.||
            for c in 0..w.cols() {
                let mut acc = 0.0f32;
                for r in 0..w.rows() {
                    acc += w.get(r, c) * self.u[r];
                }
                self.v[c] = acc;
            }
            normalize(&mut self.v);
            // u = W v / ||.||
            for r in 0..w.rows() {
                let mut acc = 0.0f32;
                let row = w.row(r);
                for (c, &vv) in self.v.iter().enumerate() {
                    acc += row[c] * vv;
                }
                self.u[r] = acc;
            }
            normalize(&mut self.u);
        }
        // sigma = u^T W v.
        let mut sigma = 0.0f32;
        for r in 0..w.rows() {
            let row = w.row(r);
            let mut acc = 0.0f32;
            for (c, &vv) in self.v.iter().enumerate() {
                acc += row[c] * vv;
            }
            sigma += self.u[r] * acc;
        }
        sigma.abs()
    }

    /// Divide `w` by its estimated spectral norm in place when the norm
    /// exceeds 1, capping the layer's Lipschitz constant.
    pub fn normalize_weight(&mut self, w: &mut Matrix, iters: usize) -> f32 {
        let sigma = self.estimate(w, iters);
        if sigma > 1.0 {
            let inv = 1.0 / sigma;
            w.map_in_place(|x| x * inv);
        }
        sigma
    }
}

fn normalize(v: &mut [f32]) {
    let norm = v.iter().map(|&x| x * x).sum::<f32>().sqrt();
    if norm > 1e-12 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    } else if let Some(first) = v.first_mut() {
        *first = 1.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn diagonal_matrix_spectral_norm_is_max_entry() {
        let w = Matrix::from_fn(3, 3, |r, c| if r == c { [2.0, 5.0, 1.0][r] } else { 0.0 });
        let mut rng = StdRng::seed_from_u64(0);
        let mut sn = SpectralNorm::new(3, 3, &mut rng);
        let sigma = sn.estimate(&w, 50);
        assert!((sigma - 5.0).abs() < 1e-3, "sigma {sigma}");
    }

    #[test]
    fn rank_one_matrix_norm_is_outer_product_norm() {
        // W = a b^T has spectral norm |a||b|.
        let a = [1.0f32, 2.0, 2.0]; // norm 3
        let b = [3.0f32, 4.0]; // norm 5
        let w = Matrix::from_fn(3, 2, |r, c| a[r] * b[c]);
        let mut rng = StdRng::seed_from_u64(1);
        let mut sn = SpectralNorm::new(3, 2, &mut rng);
        let sigma = sn.estimate(&w, 50);
        assert!((sigma - 15.0).abs() < 1e-2, "sigma {sigma}");
    }

    #[test]
    fn normalized_weight_has_unit_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = Matrix::from_fn(8, 6, |_, _| rng.gen_range(-2.0..2.0));
        let mut sn = SpectralNorm::new(8, 6, &mut rng);
        sn.normalize_weight(&mut w, 30);
        let mut check = SpectralNorm::new(8, 6, &mut rng);
        let sigma = check.estimate(&w, 50);
        assert!(sigma <= 1.0 + 1e-3, "post-normalization sigma {sigma}");
        assert!(sigma > 0.5, "normalization should not collapse weights");
    }

    #[test]
    fn small_norm_weights_left_untouched() {
        let w0 = Matrix::from_fn(4, 4, |r, c| if r == c { 0.3 } else { 0.0 });
        let mut w = w0.clone();
        let mut rng = StdRng::seed_from_u64(3);
        let mut sn = SpectralNorm::new(4, 4, &mut rng);
        sn.normalize_weight(&mut w, 20);
        assert_eq!(w, w0);
    }

    #[test]
    fn zero_matrix_does_not_panic() {
        let mut w = Matrix::zeros(3, 3);
        let mut rng = StdRng::seed_from_u64(4);
        let mut sn = SpectralNorm::new(3, 3, &mut rng);
        let sigma = sn.normalize_weight(&mut w, 5);
        assert!(sigma.abs() < 1e-6);
    }

    #[test]
    fn repeated_single_iterations_converge() {
        // One iteration per call with persistent state approaches the true
        // value, mimicking per-training-step usage.
        let w = Matrix::from_fn(5, 5, |r, c| ((r * 5 + c) as f32 * 0.13).sin());
        let mut rng = StdRng::seed_from_u64(5);
        let mut sn = SpectralNorm::new(5, 5, &mut rng);
        let mut last = 0.0;
        for _ in 0..60 {
            last = sn.estimate(&w, 1);
        }
        let mut reference = SpectralNorm::new(5, 5, &mut rng);
        let full = reference.estimate(&w, 200);
        assert!((last - full).abs() < 1e-3, "{last} vs {full}");
    }
}
