//! Reproduction harness: one subcommand per table/figure of
//! "Inspector Gadget" (Heo et al., VLDB 2020).
//!
//! ```text
//! ig-experiments <experiment> [--scale quick|medium|paper] [--seed N] [--out DIR]
//!
//! experiments: table1 table2 table3 table4 table5 table6
//!              fig9 fig10 fig11 combine chaos all
//!              ("combine" is an extra ablation of the box-combination
//!              strategy from Section 3, not a numbered paper table;
//!              "chaos" is the fault-injection / recovery harness)
//! ```
//!
//! `--scale medium` (default) keeps the paper's class ratios at reduced
//! dataset sizes so a full `all` run finishes in CPU-minutes; `paper`
//! uses Table 1's exact N. Outputs go to stdout and `<out>/<exp>.{txt,json}`.

mod ablation_combine;
mod chaos;
mod common;
mod fig10;
mod fig11;
mod fig9;
mod table1;
mod table2;
mod table3;
mod table4;
mod table5;
mod table6;

use common::Scale;

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let experiment = args.next().ok_or("missing experiment name")?;
    let mut scale = Scale::Medium;
    let mut seed = 42u64;
    let mut out = "results".to_string();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--scale" => {
                let v = args.next().ok_or("--scale needs a value")?;
                scale = Scale::parse(&v).ok_or(format!("unknown scale {v}"))?;
            }
            "--seed" => {
                let v = args.next().ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--out" => {
                out = args.next().ok_or("--out needs a value")?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Args {
        experiment,
        scale,
        seed,
        out,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: ig-experiments <table1..table6|fig9|fig10|fig11|combine|chaos|all> \
                 [--scale quick|medium|paper] [--seed N] [--out DIR]"
            );
            std::process::exit(2);
        }
    };
    let run = |name: &str| match name {
        "table1" => table1::run(args.scale, args.seed, &args.out),
        "table2" => table2::run(args.scale, args.seed, &args.out),
        "table3" => table3::run(args.scale, args.seed, &args.out),
        "table4" => table4::run(args.scale, args.seed, &args.out),
        "table5" => table5::run(args.scale, args.seed, &args.out),
        "table6" => table6::run(args.scale, args.seed, &args.out),
        "fig9" => fig9::run(args.scale, args.seed, &args.out),
        "combine" => ablation_combine::run(args.scale, args.seed, &args.out),
        "fig10" => fig10::run(args.scale, args.seed, &args.out),
        "fig11" => fig11::run(args.scale, args.seed, &args.out),
        "chaos" => chaos::run(args.scale, args.seed, &args.out),
        other => {
            eprintln!("unknown experiment {other}");
            std::process::exit(2);
        }
    };
    if args.experiment == "all" {
        for name in [
            "table1", "table2", "table3", "table4", "table5", "table6", "fig9", "fig10", "fig11",
            "combine", "chaos",
        ] {
            let started = std::time::Instant::now();
            println!("\n===================== {name} =====================");
            run(name);
            println!("[{name} took {:.1}s]", started.elapsed().as_secs_f32());
        }
    } else {
        run(&args.experiment);
    }
}
