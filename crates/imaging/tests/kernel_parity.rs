//! Property tests for the NCC kernel rungs (PR 9): the one-pass row
//! sweep, the spectral (FFT) numerator, and the planner's crossover.
//!
//! Exactness contract under test:
//! - `match_template` (row sweep) is bit-identical to
//!   `match_prepared_exact` (scalar `pearson_at` scan) — the two kernels
//!   share the dot-product and variance-term helpers, and this pins it.
//! - the FFT cross-correlation numerator agrees with brute force to
//!   1e-4 absolute on unit-range pixels, including odd / non-power-of-two
//!   operand dims;
//! - the planner's decision is monotone in pattern area at fixed image
//!   dims: once FFT wins, it wins for every larger pattern.

use ig_imaging::fft::{cross_correlation, Fft, Spectrum};
use ig_imaging::ncc::{score_map, PyramidMatchConfig};
use ig_imaging::planner::{fft_crossover_area, plan_strategy, CorrStrategy, MIN_FFT_PATTERN_AREA};
use ig_imaging::{
    match_prepared_exact, match_template, score_map_prepared, GrayImage, PreparedImage,
    PreparedPattern,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_image(w: usize, h: usize, rng: &mut StdRng) -> GrayImage {
    GrayImage::from_fn(w, h, |_, _| rng.gen_range(0.0f32..1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn row_sweep_bit_identical_to_scalar_pearson(
        iw in 8usize..40,
        ih in 8usize..36,
        pw in 2usize..10,
        ph in 2usize..10,
        seed in any::<u64>(),
    ) {
        prop_assume!(pw <= iw && ph <= ih);
        let mut rng = StdRng::seed_from_u64(seed);
        let img = random_image(iw, ih, &mut rng);
        let pat = random_image(pw, ph, &mut rng);
        // match_template runs the one-pass row sweep; match_prepared_exact
        // still scans with scalar pearson_at. Same placement, same bits.
        let sweep = match_template(&img, &pat).unwrap();
        let cfg = PyramidMatchConfig::default();
        let pi = PreparedImage::new(&img, &cfg);
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        let scalar = match_prepared_exact(&pi, &pp).unwrap();
        prop_assert_eq!((sweep.x, sweep.y), (scalar.x, scalar.y));
        prop_assert_eq!(sweep.score.to_bits(), scalar.score.to_bits());
    }

    #[test]
    fn fft_numerator_within_tolerance_of_brute_force(
        iw in 5usize..48,
        ih in 5usize..40,
        pw in 1usize..12,
        ph in 1usize..12,
        seed in any::<u64>(),
    ) {
        prop_assume!(pw <= iw && ph <= ih);
        let mut rng = StdRng::seed_from_u64(seed);
        let img = random_image(iw, ih, &mut rng);
        let pat = random_image(pw, ph, &mut rng);
        let row = Fft::new(iw.next_power_of_two()).unwrap();
        let col = Fft::new(ih.next_power_of_two()).unwrap();
        let si = Spectrum::forward(&img, &row, &col).unwrap();
        let sp = Spectrum::forward(&pat, &row, &col).unwrap();
        let out_w = iw - pw + 1;
        let out_h = ih - ph + 1;
        let corr = cross_correlation(&si, &sp, &row, &col, out_w, out_h).unwrap();
        for y in 0..out_h {
            for x in 0..out_w {
                let mut brute = 0.0f64;
                for v in 0..ph {
                    for u in 0..pw {
                        brute += pat.get(u, v) as f64 * img.get(x + u, y + v) as f64;
                    }
                }
                let got = corr[y * out_w + x];
                prop_assert!(
                    (got - brute).abs() <= 1e-4,
                    "({iw}x{ih}, {pw}x{ph}) at ({x},{y}): fft {got} vs brute {brute}"
                );
            }
        }
    }

    #[test]
    fn score_map_prepared_fft_dispatch_within_tolerance(
        iw in 48usize..64,
        ih in 48usize..64,
        side in 33usize..40,
        seed in any::<u64>(),
    ) {
        // This domain sits strictly above every crossover it can produce,
        // so the prepared map always takes the spectral path while the
        // per-call map stays on the bit-exact sweep.
        prop_assume!(side <= iw && side <= ih);
        prop_assert_eq!(plan_strategy((iw, ih), (side, side)), CorrStrategy::Fft);
        let mut rng = StdRng::seed_from_u64(seed);
        let img = random_image(iw, ih, &mut rng);
        let pat = random_image(side, side, &mut rng);
        let cfg = PyramidMatchConfig::default();
        let pi = PreparedImage::new(&img, &cfg);
        let pp = PreparedPattern::new(&pat, &cfg).unwrap();
        let fast = score_map_prepared(&pi, &pp).unwrap();
        let reference = score_map(&img, &pat).unwrap();
        prop_assert_eq!(fast.dims(), reference.dims());
        for (a, b) in fast.pixels().iter().zip(reference.pixels()) {
            prop_assert!((a - b).abs() <= 1e-4, "fft {a} vs sweep {b}");
        }
    }

    #[test]
    fn planner_crossover_monotone_in_pattern_area(
        iw in 1usize..300,
        ih in 1usize..300,
    ) {
        let cut = fft_crossover_area((iw, ih));
        prop_assert!(cut >= MIN_FFT_PATTERN_AREA);
        // Walk square patterns upward: the verdict may flip Sweep->Fft at
        // most once, exactly at the crossover.
        let mut seen_fft = false;
        for side in 1..=iw.min(ih) {
            match plan_strategy((iw, ih), (side, side)) {
                CorrStrategy::Fft => {
                    prop_assert!(side * side >= cut);
                    seen_fft = true;
                }
                CorrStrategy::Sweep => {
                    prop_assert!(!seen_fft, "flipped back to sweep at {side}");
                    prop_assert!(side * side < cut);
                }
            }
        }
    }
}
