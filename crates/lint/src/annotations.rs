//! Per-line `ig-lint` allow annotations.
//!
//! Grammar (inside a `//` line comment, anywhere on the line):
//!
//! ```text
//! // ig-lint: allow(hash-iter, float-eq) -- reason the suppression is safe
//! ```
//!
//! The reason after `--` is **mandatory**: an allow that cannot say *why*
//! the flagged construct is safe does not get to suppress anything, and is
//! itself reported as a `bad-annotation` violation. A comment that stands
//! alone on its line applies to the next line of code; a trailing comment
//! applies to its own line.

use crate::lexer::{Comment, Token};
use crate::rules::RULE_NAMES;

/// One parsed allow annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// Rule names listed inside `allow(…)`.
    pub rules: Vec<String>,
    /// Justification text after `--`, if present and non-empty.
    pub reason: Option<String>,
    /// Line the annotation comment sits on.
    pub annotation_line: u32,
    /// Line of code the annotation suppresses.
    pub target_line: u32,
}

/// A malformed annotation (unparseable list, unknown rule, missing reason).
#[derive(Debug, Clone)]
pub struct BadAnnotation {
    pub line: u32,
    pub problem: String,
}

/// All annotations of one file, indexed for suppression lookups.
#[derive(Debug, Default)]
pub struct AllowIndex {
    pub allows: Vec<Allow>,
    pub bad: Vec<BadAnnotation>,
}

impl AllowIndex {
    /// Build the index from the lexed comments. `tokens` is consulted to
    /// resolve which code line an own-line annotation targets.
    pub fn build(comments: &[Comment], tokens: &[Token]) -> Self {
        let mut idx = AllowIndex::default();
        for c in comments {
            // Doc comments describe the annotation grammar without invoking
            // it (this crate's own docs quote example annotations); only
            // plain `//` comments are live.
            if c.doc {
                continue;
            }
            let Some(body) = find_annotation_body(&c.text) else {
                continue;
            };
            match parse_annotation(body) {
                Ok((rules, reason)) => {
                    let target_line = if c.own_line {
                        next_code_line(tokens, c.line).unwrap_or(c.line + 1)
                    } else {
                        c.line
                    };
                    if reason.is_none() {
                        idx.bad.push(BadAnnotation {
                            line: c.line,
                            problem: "allow annotation is missing its mandatory \
                                      `-- reason` justification"
                                .to_string(),
                        });
                    }
                    for r in &rules {
                        if !RULE_NAMES.contains(&r.as_str()) {
                            idx.bad.push(BadAnnotation {
                                line: c.line,
                                problem: format!(
                                    "unknown rule `{r}` in allow annotation (known rules: {})",
                                    RULE_NAMES.join(", ")
                                ),
                            });
                        }
                    }
                    idx.allows.push(Allow {
                        rules,
                        reason,
                        annotation_line: c.line,
                        target_line,
                    });
                }
                Err(problem) => idx.bad.push(BadAnnotation {
                    line: c.line,
                    problem,
                }),
            }
        }
        idx
    }

    /// Does a well-formed allow for `rule` cover `line`?
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows.iter().any(|a| {
            a.target_line == line && a.reason.is_some() && a.rules.iter().any(|r| r == rule)
        })
    }
}

/// Locate the text after `ig-lint:` in a comment, if any.
fn find_annotation_body(comment: &str) -> Option<&str> {
    let at = comment.find("ig-lint:")?;
    Some(comment[at + "ig-lint:".len()..].trim())
}

/// Parse `allow(a, b) -- reason` into its parts.
fn parse_annotation(body: &str) -> Result<(Vec<String>, Option<String>), String> {
    let rest = body
        .strip_prefix("allow")
        .ok_or_else(|| format!("expected `allow(...)` after `ig-lint:`, found `{body}`"))?
        .trim_start();
    let rest = rest
        .strip_prefix('(')
        .ok_or_else(|| "expected `(` after `allow`".to_string())?;
    let close = rest
        .find(')')
        .ok_or_else(|| "unclosed `(` in allow annotation".to_string())?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list in allow annotation".to_string());
    }
    let tail = rest[close + 1..].trim();
    let reason = tail
        .strip_prefix("--")
        .map(str::trim)
        .filter(|r| !r.is_empty())
        .map(str::to_string);
    Ok((rules, reason))
}

/// First line at or after `after_line + 1` that carries a token.
fn next_code_line(tokens: &[Token], after_line: u32) -> Option<u32> {
    tokens
        .iter()
        .map(|t| t.line)
        .filter(|&l| l > after_line)
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn trailing_annotation_targets_own_line() {
        let l = lex("let x = m.unwrap(); // ig-lint: allow(panic) -- len checked above\n");
        let idx = AllowIndex::build(&l.comments, &l.tokens);
        assert!(idx.bad.is_empty());
        assert!(idx.is_allowed("panic", 1));
        assert!(!idx.is_allowed("panic", 2));
        assert!(!idx.is_allowed("float-eq", 1));
    }

    #[test]
    fn own_line_annotation_targets_next_code_line() {
        let src = "// ig-lint: allow(hash-iter) -- order normalized by sort below\n\nfor k in m.keys() {}\n";
        let l = lex(src);
        let idx = AllowIndex::build(&l.comments, &l.tokens);
        assert!(idx.is_allowed("hash-iter", 3));
    }

    #[test]
    fn missing_reason_is_bad_and_does_not_suppress() {
        let l = lex("let x = m.unwrap(); // ig-lint: allow(panic)\n");
        let idx = AllowIndex::build(&l.comments, &l.tokens);
        assert_eq!(idx.bad.len(), 1);
        assert!(!idx.is_allowed("panic", 1));
    }

    #[test]
    fn unknown_rule_is_reported() {
        let l = lex("// ig-lint: allow(no-such-rule) -- whatever\nlet x = 1;\n");
        let idx = AllowIndex::build(&l.comments, &l.tokens);
        assert_eq!(idx.bad.len(), 1);
        assert!(idx.bad[0].problem.contains("no-such-rule"));
    }

    #[test]
    fn multiple_rules_in_one_annotation() {
        let l = lex("x == 0.0 && v[0] > 1.0 // ig-lint: allow(float-eq, panic) -- fixture\n");
        let idx = AllowIndex::build(&l.comments, &l.tokens);
        assert!(idx.is_allowed("float-eq", 1));
        assert!(idx.is_allowed("panic", 1));
    }

    #[test]
    fn doc_comments_never_act_as_annotations() {
        let src = "/// Use `// ig-lint: allow(panic) -- reason` to suppress.\nlet x = 1;\n";
        let l = lex(src);
        let idx = AllowIndex::build(&l.comments, &l.tokens);
        assert!(idx.allows.is_empty());
        assert!(idx.bad.is_empty());
    }

    #[test]
    fn plain_comments_are_ignored() {
        let l = lex("// just a comment mentioning allow(panic)\nlet x = 1;\n");
        let idx = AllowIndex::build(&l.comments, &l.tokens);
        assert!(idx.allows.is_empty());
        assert!(idx.bad.is_empty());
    }
}
