//! # ig-nn
//!
//! A from-scratch neural-network substrate sized for the Inspector Gadget
//! reproduction. The paper uses PyTorch/TensorFlow/Scikit-learn for four
//! jobs, all rebuilt here in pure Rust:
//!
//! * the **MLP labeler** trained with **L-BFGS** on FGF similarity features
//!   (Section 5.2) — [`mlp::Mlp`] + [`lbfgs`],
//! * the **RGAN generator/discriminator** with **spectral normalization**
//!   (Section 4.1) — [`mlp::Mlp`] + [`spectral`] + [`optim::Adam`],
//! * the **CNN baselines and end models** (VGG-19 / MobileNetV2 / ResNet50
//!   stand-ins, Section 6.1) — [`conv`],
//! * small helpers: k-fold splits and early stopping used by labeler
//!   tuning — [`train`].
//!
//! Everything operates on `f32` with hand-written backpropagation; no
//! autodiff, no BLAS. Sizes in this reproduction (feature vectors of tens
//! of dimensions, images downscaled to ≤64 px) keep that comfortably fast.

#![warn(missing_docs)]

pub mod activation;
pub mod conv;
pub mod lbfgs;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod spectral;
pub mod train;

pub use activation::Activation;
pub use lbfgs::{minimize, minimize_robust, LbfgsConfig, LbfgsResult, RestartConfig};
pub use matrix::Matrix;
pub use mlp::{Loss, Mlp, MlpConfig};
pub use optim::{Adam, Sgd};

/// Errors from network construction and training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NnError {
    /// Incompatible matrix or tensor shapes.
    ShapeMismatch(String),
    /// Invalid hyper-parameter (zero layer width, bad fold count, ...).
    InvalidConfig(String),
}

impl std::fmt::Display for NnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NnError::ShapeMismatch(m) => write!(f, "shape mismatch: {m}"),
            NnError::InvalidConfig(m) => write!(f, "invalid config: {m}"),
        }
    }
}

impl std::error::Error for NnError {}

/// Convenience alias for nn results.
pub type Result<T> = std::result::Result<T, NnError>;
